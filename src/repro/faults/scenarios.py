"""A library of named fault scenarios for benchmarks and examples.

These are the columns of the chaos grid: each scenario is a reusable
:class:`~repro.faults.plan.FaultPlan` shape, parameterised only by seed and
(for partitions/crashes) by the concrete process names of the built system.
The benchmark ``bench_faults_sweep`` runs every protocol against every
scenario and reports availability, latency degradation and the measured SNOW
verdict side by side.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .plan import (
    BimodalLatency,
    CrashEvent,
    DropPolicy,
    DuplicatePolicy,
    FaultPlan,
    Partition,
    RetryPolicy,
    UniformLatency,
)


def slow_network(seed: int = 0) -> FaultPlan:
    """Uniformly jittered delivery latency; nothing is ever lost."""
    return FaultPlan(name="slow-network", latency=UniformLatency(0, 6), seed=seed)


def tail_latency(seed: int = 0) -> FaultPlan:
    """Mostly fast links with an occasional very slow straggler (p95 shape)."""
    return FaultPlan(name="tail-latency", latency=BimodalLatency(fast=1, slow=15, slow_probability=0.08), seed=seed)


def lossy_network(seed: int = 0, probability: float = 0.15) -> FaultPlan:
    """Fair-loss links healed by transport retransmission."""
    return FaultPlan(
        name="lossy",
        drops=DropPolicy(probability=probability, max_consecutive=4),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def duplicating_network(seed: int = 0, probability: float = 0.25) -> FaultPlan:
    """At-least-once links: spurious duplicate deliveries, nothing lost."""
    return FaultPlan(name="dup-happy", duplicates=DuplicatePolicy(probability=probability), seed=seed)


def flaky_everything(seed: int = 0) -> FaultPlan:
    """Latency + loss + duplication together — the realistic bad day."""
    return FaultPlan(
        name="flaky",
        latency=UniformLatency(0, 4),
        drops=DropPolicy(probability=0.10, max_consecutive=4),
        duplicates=DuplicatePolicy(probability=0.10),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def crash_recover(server: str = "s1", at: int = 10, recover: int = 60, seed: int = 0) -> FaultPlan:
    """One server fails and comes back; transport holds its mail meanwhile."""
    return FaultPlan(
        name="crash-recover",
        crashes=(CrashEvent(server=server, at=at, recover=recover),),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def crash_amnesia(server: str = "s1", at: int = 10, recover: int = 60, seed: int = 0) -> FaultPlan:
    """One server fails and recovers with **volatile state lost**.

    The crash-with-amnesia regime: the server comes back blank (its
    ``forget()`` hook ran), modelling a store without durable storage.
    Protocol-visible consequence: reads served by the amnesiac replica can
    be stale or initial unless the quorum discipline routes around it.
    """
    return FaultPlan(
        name="crash-amnesia",
        crashes=(CrashEvent(server=server, at=at, recover=recover, preserve_state=False),),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def fail_stop(server: str = "s1", at: int = 10, seed: int = 0) -> FaultPlan:
    """One server fails permanently: transactions touching it never finish."""
    return FaultPlan(name="fail-stop", crashes=(CrashEvent(server=server, at=at, recover=None),), seed=seed)


def coordinator_failover(leader: str = "coor", at: int = 12, seed: int = 0) -> FaultPlan:
    """Fail-stop the replicated coordinator's *leader* mid-run.

    The acceptance scenario of the consensus layer: with
    ``consensus_factor >= 3`` the surviving members hold an election after a
    bounded leaderless window and every transaction still completes with the
    same SNOW/Lemma-20 verdicts — whereas at ``consensus_factor=1`` the same
    crash (of the designated first server) stalls every coordinator-dependent
    transaction forever, which is the single point of failure this subsystem
    removes.  ``leader`` is the *bootstrap* leader name (the group's first
    member); crash it before any election and the fault hits the actual
    leader deterministically.
    """
    return FaultPlan(
        name="coordinator-failover",
        crashes=(CrashEvent(server=leader, at=at, recover=None),),
        seed=seed,
    )


def healed_partition(
    left: Sequence[str], right: Sequence[str], start: int = 5, heal: int = 40, seed: int = 0
) -> FaultPlan:
    """A link cut between two groups that heals after a window."""
    return FaultPlan(
        name="partition-heal",
        partitions=(Partition(left=tuple(left), right=tuple(right), start=start, heal=heal),),
        seed=seed,
    )


def partition_grid_scenarios(
    clients: Sequence[str],
    servers: Sequence[str],
    durations: Sequence[int] = (20, 60),
    start: int = 5,
    seed: int = 0,
) -> Dict[str, FaultPlan]:
    """The partition grid: placement × duration (the CAP experiment axes).

    Two placements are generated per duration:

    * ``client-shard`` — every client cut off from the *first* server for
      the window (a client-side network blip towards one shard);
    * ``shard-shard`` — the first server cut off from every other server
      (a back-side split; bites exactly the protocols that route reads or
      writes through a designated server).

    All partitions heal at ``start + duration``; the transport holds the
    blocked messages and releases them at the heal, so availability is about
    *when* transactions finish, and the S column reports whether consistency
    survived the reordering.  Scenario names encode both axes
    (``partition-<placement>-d<duration>``) so grid rows stay self-describing.
    """
    if not servers:
        raise ValueError("partition_grid_scenarios needs at least one server")
    scenarios: Dict[str, FaultPlan] = {}
    target = servers[0]
    others = tuple(s for s in servers if s != target)
    for duration in durations:
        scenarios[f"partition-client-shard-d{duration}"] = FaultPlan(
            name=f"partition-client-shard-d{duration}",
            partitions=(
                Partition(left=tuple(clients), right=(target,), start=start, heal=start + duration),
            ),
            seed=seed,
        )
        if others:
            scenarios[f"partition-shard-shard-d{duration}"] = FaultPlan(
                name=f"partition-shard-shard-d{duration}",
                partitions=(
                    Partition(left=(target,), right=others, start=start, heal=start + duration),
                ),
                seed=seed,
            )
    return scenarios


def standard_fault_scenarios(
    seed: int = 0, crash_server: str = "s1", partition: Optional[Partition] = None
) -> Dict[str, FaultPlan]:
    """The default chaos grid: none + five progressively nastier regimes.

    ``none`` is deliberately included so every grid has the fault-free
    baseline in column one and latency degradation is always relative.
    """
    scenarios: Dict[str, FaultPlan] = {
        "none": FaultPlan.none(),
        "slow-network": slow_network(seed=seed),
        "tail-latency": tail_latency(seed=seed),
        "lossy": lossy_network(seed=seed),
        "dup-happy": duplicating_network(seed=seed),
        "crash-recover": crash_recover(server=crash_server, seed=seed),
    }
    if partition is not None:
        scenarios["partition-heal"] = FaultPlan(
            name="partition-heal", partitions=(partition,), seed=seed
        )
    return scenarios
