"""Fault injection and network conditions for the simulation kernel.

The paper's model assumes reliable asynchronous channels; this subpackage is
the controlled departure from that assumption.  It provides:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` (latency
  models, drop/duplicate policies, partitions with heal times, server
  crash/recover schedules, a transport retry policy);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the
  :class:`~repro.ioa.network.FaultPlane` implementation that enforces a plan
  over one simulation, deterministically in its seed;
* :mod:`repro.faults.chaos` — :class:`ChaosScheduler`, which biases event
  selection by the injector's virtual arrival times;
* :mod:`repro.faults.scenarios` — a library of named chaos regimes used by
  the benchmark grid.

With no plan installed (or with :meth:`FaultPlan.none`) every execution is
byte-for-byte identical to the reliable kernel — the golden-trace tests under
``tests/faults`` pin that down — so the paper-faithful results are untouched.
"""

from .chaos import ChaosScheduler
from .injector import FaultInjector, FaultStats
from .plan import (
    BimodalLatency,
    CrashEvent,
    DropPolicy,
    DuplicatePolicy,
    FaultPlan,
    FixedLatency,
    LatencyModel,
    Partition,
    RetryPolicy,
    UniformLatency,
)
from .adversary import (
    chaos_adversarial_scheduler,
    fracture_rules,
    hunt_s_violations,
)
from .scenarios import (
    auto_heal,
    coordinator_failover,
    crash_amnesia,
    crash_recover,
    duplicating_network,
    fail_stop,
    flaky_everything,
    grow_group_mid_run,
    healed_partition,
    lossy_network,
    partition_grid_scenarios,
    replace_dead_replica,
    shrink_consensus_group_mid_run,
    slow_network,
    standard_fault_scenarios,
    tail_latency,
)

__all__ = [
    "ChaosScheduler",
    "FaultInjector",
    "FaultStats",
    "BimodalLatency",
    "CrashEvent",
    "DropPolicy",
    "DuplicatePolicy",
    "FaultPlan",
    "FixedLatency",
    "LatencyModel",
    "Partition",
    "RetryPolicy",
    "UniformLatency",
    "chaos_adversarial_scheduler",
    "fracture_rules",
    "hunt_s_violations",
    "auto_heal",
    "coordinator_failover",
    "crash_amnesia",
    "crash_recover",
    "duplicating_network",
    "fail_stop",
    "flaky_everything",
    "grow_group_mid_run",
    "healed_partition",
    "lossy_network",
    "partition_grid_scenarios",
    "replace_dead_replica",
    "shrink_consensus_group_mid_run",
    "slow_network",
    "standard_fault_scenarios",
    "tail_latency",
]
