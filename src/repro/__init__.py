"""repro — a Python reproduction of *SNOW Revisited* (Konwar, Lloyd, Lu, Lynch).

The package is organised in layers:

* :mod:`repro.ioa` — deterministic I/O-automata-style simulation substrate
  (messages, traces, automata, schedulers/adversaries, the kernel);
* :mod:`repro.txn` — the transaction system (objects, READ/WRITE
  transactions, the ``OT`` data type, histories);
* :mod:`repro.core` — the SNOW property checkers, strict-serializability
  checkers (semantic search and Lemma 20) and the Figure 1 matrices;
* :mod:`repro.protocols` — the paper's algorithms A, B and C, the Eiger-style
  protocol of Section 6, and baselines (naive SNOW candidate, strict 2PL,
  double-collect OCC, simple reads);
* :mod:`repro.proofs` — mechanical replays of the impossibility constructions
  (Figures 3 and 4) and of the Eiger counter-example (Figure 5);
* :mod:`repro.analysis` — workload generation, the experiment runner and the
  table/series formatting used by the benchmark harness;
* :mod:`repro.faults` — fault injection and network conditions (latency,
  drops, duplication, partitions, server crashes) layered *optionally* on the
  kernel: with no plan installed the reliable paper model is untouched;
* :mod:`repro.consensus` — the replicated coordinator log (Raft-style
  consensus: ``ConsensusLog``, ``LeaderElection``, ``ReplicatedCoordinator``)
  that removes the coordinator single point of failure of algorithms B/C and
  OCC; ``consensus_factor=1`` leaves everything byte-identical to the seed;
* :mod:`repro.obs` — the observability plane: causal span trees derived
  from kernel traces, a virtual-time metrics registry fed by trace/mailbox
  hooks, an opt-in wall-clock kernel profiler, and Chrome trace-event /
  text-timeline exporters; off by default and trace-invisible when enabled.

Quickstart::

    from repro.protocols import get_protocol

    handle = get_protocol("algorithm-a").build(num_writers=2, num_objects=2)
    w = handle.submit_write({"ox": 1, "oy": 1})
    r = handle.submit_read(after=[w])
    handle.run_to_completion()
    print(handle.history().describe())
    print(handle.snow_report().describe())
"""

from . import core, faults, ioa, protocols, txn

__version__ = "1.1.0"

__all__ = ["core", "faults", "ioa", "protocols", "txn", "__version__"]
