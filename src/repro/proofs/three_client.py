"""Mechanical replay of Theorem 1: no SNOW with three clients, even with C2C.

Section 4 of the paper proves the (strengthened) SNOW theorem: with two
readers, one writer and two servers, no algorithm can satisfy all four SNOW
properties, *even if* clients may message each other.  The proof assumes such
an algorithm exists and constructs, through the chain of executions
``α₀ … α₁₀`` of Figure 3 (Lemmas 5-14), an execution in which READ
transaction ``R₂`` finishes before ``R₁`` starts yet ``R₂`` returns the new
values ``(x₁, y₁)`` while ``R₁`` returns the old values ``(x₀, y₀)`` —
contradicting strict serializability.

This module replays that chain over :class:`~repro.proofs.symbolic`
executions.  Each lemma becomes a scripted step:

* the steps that are pure **commuting** arguments (Lemmas 7, 8, 11, 12, 14)
  are executed as checked adjacent swaps — the dependency rule of
  Appendix B / Lemma 2 is verified for every swap, so an illegal reordering
  would make the replay fail loudly;
* the steps that rest on **indistinguishability** (Lemma 5's minimal-``k``
  construction and Lemmas 9, 10, 13, which rebuild a fragment at the same
  server) are recorded as *justified* steps carrying the paper's argument,
  and the invariants they claim (which transaction returns which values)
  are tracked explicitly;
* the final contradiction is not asserted but **recomputed**: the
  transaction-level history induced by ``α₁₀`` is handed to the semantic
  strict-serializability checker, which rejects it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.serializability import check_strict_serializability
from ..txn.history import History, HistoryEntry
from ..txn.transactions import ReadResult, read, write, WRITE_OK
from .symbolic import ProofReplay, SymbolicExecution, fragment


OLD = ("x0", "y0")
NEW = ("x1", "y1")


def build_alpha2() -> SymbolicExecution:
    """The execution α₂ of Lemma 6.

    ``P_k`` is the (pinned) prefix of Lemma 5, ``a_{k+1}`` the single extra
    action — shown by Lemma 5(iii) to occur at reader ``r1`` — after which
    ``R₁`` returns the new values; ``R₁`` and ``R₂`` then run back to back
    (each in the canonical ``I ∘ F_x ∘ F_y ∘ E`` shape guaranteed by
    Lemma 4), and by strict serializability both return ``(x₁, y₁)``.
    """
    return SymbolicExecution(
        [
            fragment("P_k", "*", movable=False, note="prefix of Lemma 5 (contains W)"),
            fragment("a_k+1", "r1", note="critical action at r1 (Lemma 5 iii)"),
            fragment("I1", "r1", sends={"m1x", "m1y"}, txn="R1", note="INV(R1) and request sends"),
            fragment("F1x", "sx", receives={"m1x"}, sends={"v1x"}, txn="R1", note="returns x1"),
            fragment("F1y", "sy", receives={"m1y"}, sends={"v1y"}, txn="R1", note="returns y1"),
            fragment("E1", "r1", receives={"v1x", "v1y"}, txn="R1", note="R1 responds (x1,y1)"),
            fragment("I2", "r2", sends={"m2x", "m2y"}, txn="R2", note="INV(R2) and request sends"),
            fragment("F2x", "sx", receives={"m2x"}, sends={"v2x"}, txn="R2", note="returns x1"),
            fragment("F2y", "sy", receives={"m2y"}, sends={"v2y"}, txn="R2", note="returns y1"),
            fragment("E2", "r2", receives={"v2x", "v2y"}, txn="R2", note="R2 responds (x1,y1)"),
            fragment("S", "*", movable=False, note="suffix"),
        ],
        name="alpha2",
    )


def _induced_history(r1_values: Tuple[str, str], r2_values: Tuple[str, str]) -> History:
    """The transaction-level history induced by α₁₀.

    The WRITE completes inside the prefix; ``R₂`` then completes strictly
    before ``R₁`` is invoked (that is what α₁₀ looks like), with the recorded
    return values.
    """
    # Version 0 is the initial value, version 1 is what W writes; the symbolic
    # value labels ("x0", "x1", ...) map onto 0 and 1 per object.
    def version_of(label: str) -> int:
        return 1 if label.endswith("1") else 0

    w = write(ox=1, oy=1, txn_id="W")
    r2 = read("ox", "oy", txn_id="R2")
    r1 = read("ox", "oy", txn_id="R1")
    entries = [
        HistoryEntry(txn=w, client="w", invoke_index=0, respond_index=1, result=WRITE_OK),
        HistoryEntry(
            txn=r2,
            client="r2",
            invoke_index=2,
            respond_index=3,
            result=ReadResult.from_mapping({"ox": version_of(r2_values[0]), "oy": version_of(r2_values[1])}),
        ),
        HistoryEntry(
            txn=r1,
            client="r1",
            invoke_index=4,
            respond_index=5,
            result=ReadResult.from_mapping({"ox": version_of(r1_values[0]), "oy": version_of(r1_values[1])}),
        ),
    ]
    return History(entries, objects=("ox", "oy"), initial_value=0)


def replay_theorem1() -> ProofReplay:
    """Replay the α₀ … α₁₀ chain and recompute the final contradiction."""
    replay = ProofReplay(theorem="Theorem 1: SNOW is impossible with two readers and one writer (even with C2C)")

    execution = build_alpha2()
    replay.record(
        "Lemmas 4-6 (α₀, α₁, α₂)",
        "Assume an algorithm A with all SNOW properties.  Lemma 5 yields a minimal prefix P_k and a "
        "critical action a_{k+1} at r1 separating executions where R1 returns (x0,y0) from ones where it "
        "returns (x1,y1); Lemma 4 shapes R1 as I∘F_x∘F_y∘E; Lemma 6 appends R2, which by S returns (x1,y1).",
        execution,
        mechanically_checked=False,
    )

    # ------------------------------------------------------------------
    # Lemma 7 (α₃): I2 moves before a_{k+1}.
    # ------------------------------------------------------------------
    reasons = execution.move_before("I2", "a_k+1")
    execution.name = "alpha3"
    replay.record(
        "Lemma 7 (α₃)",
        f"I2 commutes leftwards past E1, F1y, F1x, I1 and a_k+1 ({len(reasons)} checked swaps): "
        "all of R1's fragments and the critical action occur at automata other than r2.",
        execution,
    )

    # ------------------------------------------------------------------
    # Lemma 8 (α₄): F2y moves before E1 (after swapping F2x and F2y).
    # ------------------------------------------------------------------
    reasons = execution.move_before("F2y", "F2x")
    reasons += execution.move_before("F2y", "E1")
    execution.name = "alpha4"
    replay.record(
        "Lemma 8 (α₄)",
        f"F2y commutes past F2x and E1 ({len(reasons)} checked swaps): the fragments occur at sy, sx and r1 "
        "respectively and exchange no messages.",
        execution,
    )

    # ------------------------------------------------------------------
    # Lemma 9 (α₅): F2y moves before F1y — same server, so this is a
    # construction (prefix extension) rather than a commute.
    # ------------------------------------------------------------------
    allowed, reason = execution.can_swap(execution.get("F1y"), execution.get("F2y"))
    assert not allowed, "F1y/F2y share server sy; the proof must not treat this as a plain commute"
    index_f1y = execution.index_of("F1y")
    index_f2y = execution.index_of("F2y")
    execution._fragments[index_f1y], execution._fragments[index_f2y] = (
        execution._fragments[index_f2y],
        execution._fragments[index_f1y],
    )
    execution.name = "alpha5"
    replay.record(
        "Lemma 9 (α₅)",
        "F2y is re-constructed to occur before F1y at server sy (the adversary delivers m2y first).  This is "
        f"not a commute ({reason}); the paper extends the prefix ending at F1x and re-derives the values: "
        "F1x is unchanged so by Lemma 3 and S, R1 still returns (x1,y1); F2x is unchanged so R2 still returns (x1,y1).",
        execution,
        mechanically_checked=False,
    )

    # ------------------------------------------------------------------
    # Lemma 10 (α₆): drop a_{k+1}; R1's values flip to (x0,y0).
    # ------------------------------------------------------------------
    index = execution.index_of("a_k+1")
    del execution._fragments[index]
    execution.annotate("F1x", "returns x0")
    execution.annotate("F1y", "returns y0")
    execution.annotate("E1", "R1 responds (x0,y0)")
    execution.name = "alpha6"
    replay.record(
        "Lemma 10 (α₆)",
        "R1 is re-invoked immediately after I2 (without the critical action a_{k+1}).  Ignoring I2's actions, "
        "the prefix is exactly the prefix of α₀ from Lemma 5, so F1x is indistinguishable from F1x(α₀) and "
        "returns x0; by Lemma 3 and S, R1 returns (x0,y0).  F2y is unchanged, so R2 still returns (x1,y1).",
        execution,
        mechanically_checked=False,
    )
    r1_values, r2_values = OLD, NEW

    # ------------------------------------------------------------------
    # Lemma 11 (α₇): F2x moves before F1y and E1.
    # ------------------------------------------------------------------
    reasons = execution.move_before("F2x", "F1y")
    execution.name = "alpha7"
    replay.record(
        "Lemma 11 (α₇)",
        f"F2x commutes past E1 and F1y ({len(reasons)} checked swaps): it occurs at sx while they occur at r1 and sy.",
        execution,
    )

    # ------------------------------------------------------------------
    # Lemma 12 (α₈): F2y moves before I1 (and hence before F1x).
    # ------------------------------------------------------------------
    reasons = execution.move_before("F2y", "I1")
    execution.name = "alpha8"
    replay.record(
        "Lemma 12 (α₈)",
        f"F2y commutes past F1x and I1 ({len(reasons)} checked swaps): it occurs at sy while they occur at sx and r1.",
        execution,
    )

    # ------------------------------------------------------------------
    # Lemma 13 (α₉): F2x moves before F1x — same server, constructed.
    # ------------------------------------------------------------------
    allowed, reason = execution.can_swap(execution.get("F1x"), execution.get("F2x"))
    assert not allowed, "F1x/F2x share server sx; the proof must not treat this as a plain commute"
    index_f1x = execution.index_of("F1x")
    index_f2x = execution.index_of("F2x")
    execution._fragments[index_f1x], execution._fragments[index_f2x] = (
        execution._fragments[index_f2x],
        execution._fragments[index_f1x],
    )
    execution.name = "alpha9"
    replay.record(
        "Lemma 13 (α₉)",
        "F2x is re-constructed to occur before F1x at server sx (the adversary delivers m2x first).  This is "
        f"not a commute ({reason}); by Lemma 3 applied to F2y, R2 still returns (x1,y1), and by Lemma 3 applied "
        "to F1y, R1 still returns (x0,y0).",
        execution,
        mechanically_checked=False,
    )

    # ------------------------------------------------------------------
    # Lemma 14 (α₁₀): F2x moves before I1; E2 moves before I1: R2 wholly precedes R1.
    # ------------------------------------------------------------------
    reasons = execution.move_before("F2x", "I1")
    reasons += execution.move_before("E2", "I1")
    execution.name = "alpha10"
    replay.record(
        "Lemma 14 (α₁₀)",
        f"F2x and then E2 commute leftwards past R1's fragments ({len(reasons)} checked swaps): none of R1's "
        "fragments occur at r2 and none of them send the messages E2 receives.  R2 now completes before R1 begins.",
        execution,
    )

    # ------------------------------------------------------------------
    # The contradiction, recomputed semantically.
    # ------------------------------------------------------------------
    order = execution.transaction_order(("R1", "R2"))
    if order != ("R2", "R1"):
        replay.contradiction_found = False
        replay.contradiction_note = f"unexpected transaction order {order}"
        replay.final_execution = execution
        return replay

    history = _induced_history(r1_values, r2_values)
    verdict = check_strict_serializability(history)
    replay.final_execution = execution
    if not verdict.ok:
        replay.contradiction_found = True
        replay.contradiction_note = (
            "in α₁₀, R2 precedes R1 in real time yet R2 returns (x1,y1) while R1 returns (x0,y0); the semantic "
            "checker confirms no strict serialization exists: " + "; ".join(verdict.violations)
        )
    else:  # pragma: no cover - would indicate a checker bug
        replay.contradiction_found = False
        replay.contradiction_note = "semantic checker unexpectedly accepted the final history"
    return replay


def alpha_chain_names() -> List[str]:
    """The names of the executions in the Figure 3 chain, in order."""
    return ["alpha0", "alpha1", "alpha2", "alpha3", "alpha4", "alpha5", "alpha6", "alpha7", "alpha8", "alpha9", "alpha10"]
