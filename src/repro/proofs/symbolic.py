"""Symbolic executions: the vehicle for replaying the impossibility proofs.

The impossibility arguments of Sections 4 and 5.1 reason about executions of
a *hypothetical* algorithm assumed to satisfy all SNOW properties, so they
cannot be replayed on a concrete protocol.  What *can* be mechanised is the
structure the proofs actually manipulate: sequences of execution fragments,
each occurring at one automaton and sending/receiving known messages, which
are repeatedly **commuted** (Lemma 2 / the dependency-preserving reordering
Claim of Appendix B) until an execution is reached whose transaction-level
outcome contradicts strict serializability.

A :class:`SymbolicFragment` records exactly the attributes those arguments
use — the automaton it occurs at, the messages it receives and sends, and
the transaction values it is known to carry.  A :class:`SymbolicExecution`
is an ordered sequence of fragments; its :meth:`swap_adjacent` refuses any
swap whose preconditions do not hold, so every commuting step of the replay
is machine-checked, and the per-lemma constructions in
:mod:`repro.proofs.three_client` and :mod:`repro.proofs.two_client` are
scripts of such checked steps.  Steps that rest on the paper's
*indistinguishability* arguments (Lemma 3 / Lemma 5's minimal-``k``
construction) are recorded as explicit :class:`ProofStep` justifications and
re-validated at the end by running the induced transaction history through
the semantic strict-serializability checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ioa.errors import TraceError


@dataclass(frozen=True)
class SymbolicFragment:
    """One fragment of a symbolic execution.

    Attributes
    ----------
    name:
        Unique label, e.g. ``"F1x"`` or ``"a_k+1"``.
    actor:
        The automaton at which every action of the fragment occurs
        (``"*"`` marks opaque prefix/suffix blocks that are never moved).
    receives / sends:
        Labels of the channel messages the fragment consumes / produces;
        used for the dependency check when commuting.
    txn:
        The transaction the fragment belongs to (``"R1"``, ``"R2"``, ``"W"``)
        or ``None``.
    note:
        Free-form annotation, e.g. the value a non-blocking fragment returns.
    movable:
        Opaque blocks (prefix ``P_k``, suffix ``S``) are pinned.
    """

    name: str
    actor: str
    receives: FrozenSet[str] = frozenset()
    sends: FrozenSet[str] = frozenset()
    txn: Optional[str] = None
    note: str = ""
    movable: bool = True

    def describe(self) -> str:
        extra = f" [{self.note}]" if self.note else ""
        return f"{self.name}@{self.actor}{extra}"


def fragment(
    name: str,
    actor: str,
    receives: Iterable[str] = (),
    sends: Iterable[str] = (),
    txn: Optional[str] = None,
    note: str = "",
    movable: bool = True,
) -> SymbolicFragment:
    """Convenience constructor."""
    return SymbolicFragment(
        name=name,
        actor=actor,
        receives=frozenset(receives),
        sends=frozenset(sends),
        txn=txn,
        note=note,
        movable=movable,
    )


@dataclass
class ProofStep:
    """One recorded step of a proof replay."""

    lemma: str
    description: str
    mechanically_checked: bool
    execution_after: Tuple[str, ...]

    def describe(self) -> str:
        flag = "checked" if self.mechanically_checked else "justified"
        return f"[{flag}] {self.lemma}: {self.description}\n    -> {' ∘ '.join(self.execution_after)}"


class SymbolicExecution:
    """An ordered sequence of symbolic fragments with checked transformations."""

    def __init__(self, fragments: Sequence[SymbolicFragment], name: str = "") -> None:
        self._fragments: List[SymbolicFragment] = list(fragments)
        self.name = name
        names = [f.name for f in self._fragments]
        if len(set(names)) != len(names):
            raise TraceError(f"duplicate fragment names in symbolic execution: {names}")

    # ------------------------------------------------------------------
    def fragments(self) -> Tuple[SymbolicFragment, ...]:
        return tuple(self._fragments)

    def names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self._fragments)

    def __len__(self) -> int:
        return len(self._fragments)

    def index_of(self, name: str) -> int:
        for index, frag in enumerate(self._fragments):
            if frag.name == name:
                return index
        raise TraceError(f"no fragment named {name!r} in execution {self.name!r}")

    def get(self, name: str) -> SymbolicFragment:
        return self._fragments[self.index_of(name)]

    def copy(self, name: str = "") -> "SymbolicExecution":
        return SymbolicExecution(self._fragments, name=name or self.name)

    # ------------------------------------------------------------------
    # Checked transformations
    # ------------------------------------------------------------------
    def can_swap(self, left: SymbolicFragment, right: SymbolicFragment) -> Tuple[bool, str]:
        """Whether ``left ∘ right`` may become ``right ∘ left``.

        The rule is the dependency-preserving reordering of Appendix B
        (which subsumes the two cases of Lemma 2): the fragments must occur
        at distinct automata, both must be movable, and no message sent by
        ``left`` may be received by ``right`` (otherwise the reorder would
        deliver a message before it was sent).
        """
        if not left.movable or not right.movable:
            return False, "prefix/suffix blocks are pinned"
        if left.actor == "*" or right.actor == "*":
            return False, "opaque blocks cannot be commuted"
        if left.actor == right.actor:
            return False, f"both fragments occur at {left.actor}"
        if left.sends & right.receives:
            clash = ", ".join(sorted(left.sends & right.receives))
            return False, f"{right.name} receives message(s) {clash} sent by {left.name}"
        return True, "distinct automata, no message dependency"

    def swap_adjacent(self, index: int) -> str:
        """Swap the fragments at ``index`` and ``index + 1`` (checked)."""
        if index < 0 or index + 1 >= len(self._fragments):
            raise TraceError(f"swap index {index} out of range")
        left, right = self._fragments[index], self._fragments[index + 1]
        allowed, reason = self.can_swap(left, right)
        if not allowed:
            raise TraceError(f"cannot swap {left.name!r} and {right.name!r}: {reason}")
        self._fragments[index], self._fragments[index + 1] = right, left
        return reason

    def move_before(self, mover: str, target: str) -> List[str]:
        """Move fragment ``mover`` to just before ``target`` via adjacent swaps.

        Every intermediate swap is checked; the list of justifications is
        returned so proof replays can record them.
        """
        reasons: List[str] = []
        mover_index = self.index_of(mover)
        target_index = self.index_of(target)
        if mover_index < target_index:
            # moving right: swap forward until just before target
            while self.index_of(mover) < self.index_of(target) - 1:
                reasons.append(self.swap_adjacent(self.index_of(mover)))
        else:
            while self.index_of(mover) > self.index_of(target):
                reasons.append(self.swap_adjacent(self.index_of(mover) - 1))
        return reasons

    def move_after(self, mover: str, target: str) -> List[str]:
        """Move fragment ``mover`` to just after ``target`` via adjacent swaps."""
        reasons: List[str] = []
        if self.index_of(mover) < self.index_of(target):
            while self.index_of(mover) < self.index_of(target):
                reasons.append(self.swap_adjacent(self.index_of(mover)))
        else:
            while self.index_of(mover) > self.index_of(target) + 1:
                reasons.append(self.swap_adjacent(self.index_of(mover) - 1))
        return reasons

    def annotate(self, name: str, note: str) -> None:
        """Replace a fragment's note (e.g. when a value binding is re-derived)."""
        index = self.index_of(name)
        self._fragments[index] = replace(self._fragments[index], note=note)

    # ------------------------------------------------------------------
    def transaction_order(self, txns: Sequence[str]) -> Tuple[str, ...]:
        """Order of transactions by the position of their last fragment."""
        last_position: Dict[str, int] = {}
        for index, frag in enumerate(self._fragments):
            if frag.txn in txns:
                last_position[frag.txn] = index
        return tuple(sorted(last_position, key=lambda t: last_position[t]))

    def describe(self) -> str:
        return f"{self.name or 'execution'}: " + " ∘ ".join(f.describe() for f in self._fragments)


@dataclass
class ProofReplay:
    """The outcome of replaying one impossibility argument."""

    theorem: str
    steps: List[ProofStep] = field(default_factory=list)
    contradiction_found: bool = False
    contradiction_note: str = ""
    final_execution: Optional[SymbolicExecution] = None

    def record(
        self,
        lemma: str,
        description: str,
        execution: SymbolicExecution,
        mechanically_checked: bool = True,
    ) -> None:
        self.steps.append(
            ProofStep(
                lemma=lemma,
                description=description,
                mechanically_checked=mechanically_checked,
                execution_after=execution.names(),
            )
        )

    @property
    def ok(self) -> bool:
        return self.contradiction_found

    def checked_steps(self) -> int:
        return sum(1 for step in self.steps if step.mechanically_checked)

    def describe(self) -> str:
        lines = [f"Proof replay: {self.theorem}"]
        for step in self.steps:
            lines.append("  " + step.describe().replace("\n", "\n  "))
        if self.contradiction_found:
            lines.append(f"  CONTRADICTION: {self.contradiction_note}")
        else:
            lines.append("  (no contradiction reached)")
        return "\n".join(lines)
