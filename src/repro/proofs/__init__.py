"""Mechanical replays of the paper's constructions (Figures 2-5)."""

from .eiger_example import EigerExampleResult, run_figure5
from .fragments import (
    CommuteCheck,
    ReadFragments,
    can_commute,
    commute_adjacent,
    extract_read_fragments,
    indistinguishable_fragments,
    returned_value,
)
from .symbolic import ProofReplay, ProofStep, SymbolicExecution, SymbolicFragment, fragment
from .three_client import alpha_chain_names, build_alpha2, replay_theorem1
from .two_client import build_beta, c2c_breaks_the_chain, replay_theorem2

__all__ = [
    "EigerExampleResult",
    "run_figure5",
    "CommuteCheck",
    "ReadFragments",
    "can_commute",
    "commute_adjacent",
    "extract_read_fragments",
    "indistinguishable_fragments",
    "returned_value",
    "ProofReplay",
    "ProofStep",
    "SymbolicExecution",
    "SymbolicFragment",
    "fragment",
    "alpha_chain_names",
    "build_alpha2",
    "replay_theorem1",
    "build_beta",
    "c2c_breaks_the_chain",
    "replay_theorem2",
]
