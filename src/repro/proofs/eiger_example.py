"""The Figure 5 execution: Eiger's read-only transactions are not strictly serializable.

Section 6 corrects the earlier claim that Eiger's bounded-latency read-only
transactions provide strict serializability.  The root cause is that Eiger
orders operations with Lamport clocks, and logical clocks cannot observe the
*real-time* order of operations that are not causally related.

This module drives the concrete Eiger-style protocol implementation
(:mod:`repro.protocols.eiger`) through exactly the scenario of Figure 5:

* two servers ``sx`` (object ``ox``, the figure's ``A``) and ``sy``
  (object ``oy``, the figure's ``B``);
* write client ``w1`` issues ``W1 = write(oy=b1)`` and then
  ``W2 = write(oy=b2)``;
* a *different* write client ``w2`` issues ``W3 = write(ox=a3)`` only after
  ``W2`` has completed — so ``W2`` precedes ``W3`` in real time, but no
  message chain connects them and their Lamport timestamps do not reflect
  the order;
* the reader's READ transaction ``R = read(ox, oy)`` is concurrent with all
  three writes; the network delivers its request to ``sy`` after ``W1`` but
  before ``W2``, and its request to ``sx`` only after ``W3``.

Eiger's first-round validity-interval check then *accepts* the combination
``(ox = a3, oy = b1)`` — the returned logical intervals overlap — even though
any serialization that makes ``W3``'s value visible must also make ``W2``'s
value visible.  The strict-serializability checker rejects the resulting
history, reproducing the paper's counter-example end to end on a running
protocol rather than on paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.serializability import SerializabilityResult, check_strict_serializability
from ..core.snow import SnowReport, check_snow
from ..ioa.scheduler import (
    AdversarialScheduler,
    DelayRule,
    holds_message,
    until_message_delivered,
)
from ..protocols.eiger import EigerProtocol
from ..txn.history import History
from ..txn.transactions import ReadResult


@dataclass
class EigerExampleResult:
    """Everything the Figure 5 reproduction measures."""

    history: History
    snow_report: SnowReport
    serializability: SerializabilityResult
    read_result: Optional[ReadResult]
    accepted_first_round: bool
    read_txn_id: str
    w1_id: str
    w2_id: str
    w3_id: str

    @property
    def anomaly_reproduced(self) -> bool:
        """True when the read mixed W3's and W1's values and S is violated."""
        return (
            not self.serializability.ok
            and self.read_result is not None
            and self.read_result.value_for("ox") == "a3"
            and self.read_result.value_for("oy") == "b1"
        )

    def describe(self) -> str:
        lines = [
            "Figure 5 reproduction (Eiger-style read-only transaction):",
            f"  READ returned {self.read_result.describe() if self.read_result else 'nothing'}",
            f"  accepted in first round: {self.accepted_first_round}",
            f"  strict serializability: {self.serializability.describe()}",
            f"  anomaly reproduced: {self.anomaly_reproduced}",
        ]
        return "\n".join(lines)


def run_figure5(initial_value: str = "init") -> EigerExampleResult:
    """Construct and run the Figure 5 execution on the Eiger-style protocol."""
    protocol = EigerProtocol()
    handle = protocol.build(
        num_readers=1,
        num_writers=2,
        num_objects=2,
        initial_value=initial_value,
    )
    sx, sy = handle.servers[0], handle.servers[1]
    writer1, writer2 = handle.writers[0], handle.writers[1]
    reader = handle.readers[0]

    # The workload of Figure 5 -------------------------------------------------
    read_id = handle.submit_read(["ox", "oy"], reader=reader)
    w1_id = handle.submit_write({"oy": "b1"}, writer=writer1)
    w2_id = handle.submit_write({"oy": "b2"}, writer=writer1)
    w3_id = handle.submit_write({"ox": "a3"}, writer=writer2, after=[w2_id])

    # The adversarial schedule of Figure 5 --------------------------------------
    rules = [
        DelayRule(
            name="read-at-sy-waits-for-w1",
            holds=holds_message(msg_type="eiger-read", dst=sy, predicate=lambda m: m.get("txn") == read_id),
            until=until_message_delivered("eiger-write", src=writer1, dst=sy),
        ),
        DelayRule(
            name="w2-waits-for-read-at-sy",
            holds=holds_message(msg_type="eiger-write", dst=sy, predicate=lambda m: m.get("txn") == w2_id),
            until=until_message_delivered("eiger-read", src=reader, dst=sy),
        ),
        DelayRule(
            name="read-at-sx-waits-for-w3",
            holds=holds_message(msg_type="eiger-read", dst=sx, predicate=lambda m: m.get("txn") == read_id),
            until=until_message_delivered("eiger-write", src=writer2, dst=sx),
        ),
    ]
    handle.simulation.scheduler = AdversarialScheduler(rules=rules, release_when_stuck=False)

    handle.run_to_completion()

    history = handle.history()
    read_record = handle.simulation.transaction_record(read_id)
    report = check_snow(handle.simulation, history)
    serializability = check_strict_serializability(history.restricted_to_complete())
    return EigerExampleResult(
        history=history,
        snow_report=report,
        serializability=serializability,
        read_result=read_record.result if read_record else None,
        accepted_first_round=bool(read_record.annotations.get("accepted_first_round")) if read_record else False,
        read_txn_id=read_id,
        w1_id=w1_id,
        w2_id=w2_id,
        w3_id=w3_id,
    )
