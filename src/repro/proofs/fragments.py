"""Execution fragments and the commuting / indistinguishability lemmas.

Section 3 of the paper introduces the vocabulary its impossibility proofs are
written in:

* the **invocation fragment** ``I_i`` of READ transaction ``R_i`` — every
  action from ``INV(R_i)`` up to the later of the two read-request ``send``
  actions, all occurring at the reader;
* the **non-blocking fragments** ``F_{i,x}`` / ``F_{i,y}`` — at a server,
  from the receipt of the read request to the sending of the value, with no
  other input action in between (this is what N + O guarantee exists);
* the **completion fragment** ``E_i`` — at the reader, from the later of the
  two value receipts to ``RESP(R_i)``;
* **Lemma 2 (commuting fragments)** — two adjacent fragments at distinct
  automata can be swapped when either neither contains an input action or one
  of them has no external action, producing another valid execution;
* **Lemma 3 (indistinguishability)** — if a READ's non-blocking fragment at a
  server is identical in two executions, the READ returns the same value for
  that server's object in both.

This module makes those notions executable over concrete traces: fragments
are extracted from real executions (used by the Figure 2 benchmark and by
tests of algorithm A), the commuting transformation is implemented together
with its precondition checks, and the transformed action sequences are
re-validated against the channel semantics so that "is still an execution"
is checked rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..ioa.actions import Action, ActionKind
from ..ioa.errors import TraceError
from ..ioa.trace import Fragment, Trace, reindex


# ----------------------------------------------------------------------
# Fragment extraction from concrete traces
# ----------------------------------------------------------------------
@dataclass
class ReadFragments:
    """The ``I``, ``F`` (per server) and ``E`` fragments of one READ transaction."""

    txn_id: str
    reader: str
    invocation: Fragment
    non_blocking: Tuple[Tuple[str, Fragment], ...]  # (server, fragment)
    completion: Fragment

    def fragment_for_server(self, server: str) -> Fragment:
        for name, fragment in self.non_blocking:
            if name == server:
                return fragment
        raise KeyError(server)

    def servers(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.non_blocking)

    def describe(self) -> str:
        parts = [f"I({len(self.invocation)})"]
        for server, fragment in self.non_blocking:
            parts.append(f"F_{server}({len(fragment)})")
        parts.append(f"E({len(self.completion)})")
        return f"{self.txn_id}: " + " ∘ ".join(parts)


def _is_read_request(action: Action, txn_id: str, reader: str, server: str) -> bool:
    return (
        action.kind == ActionKind.SEND
        and action.actor == reader
        and action.message is not None
        and action.message.dst == server
        and action.message.get("txn") == txn_id
    )


def _is_read_reply(action: Action, txn_id: str, reader: str, server: str) -> bool:
    return (
        action.kind == ActionKind.SEND
        and action.actor == server
        and action.message is not None
        and action.message.dst == reader
        and action.message.get("txn") == txn_id
    )


def extract_read_fragments(
    trace: Trace,
    txn_id: str,
    reader: str,
    servers: Sequence[str],
) -> ReadFragments:
    """Extract ``I``, ``F_{·}`` and ``E`` for a completed one-round READ.

    Raises :class:`TraceError` if the transaction's shape does not match the
    paper's anatomy (e.g. the protocol used more than one round, or a server
    blocked) — which is itself useful: algorithm A executions always succeed,
    baseline executions may not.
    """
    invoke = trace.find(
        lambda a: a.kind == ActionKind.INVOKE and a.actor == reader and a.get("txn") == txn_id
    )
    respond = trace.find(
        lambda a: a.kind == ActionKind.RESPOND and a.actor == reader and a.get("txn") == txn_id
    )
    if invoke is None or respond is None:
        raise TraceError(f"transaction {txn_id} is not complete in this trace")

    # Request sends at the reader, one per server.
    request_sends = {}
    for server in servers:
        send = trace.find(lambda a, s=server: _is_read_request(a, txn_id, reader, s), start=invoke.index)
        if send is None:
            raise TraceError(f"no read request from {reader} to {server} for {txn_id}")
        request_sends[server] = send
    last_request = max(request_sends.values(), key=lambda a: a.index)

    invocation_actions = [invoke] + [
        a for a in trace.between(invoke.index, last_request.index) if a.actor == reader
    ] + [last_request]
    invocation = Fragment(actions=tuple(invocation_actions), label=f"I({txn_id})")

    # Non-blocking fragments at each server.
    non_blocking: List[Tuple[str, Fragment]] = []
    for server in servers:
        request_recv = trace.find(
            lambda a, s=server: a.kind == ActionKind.RECV
            and a.actor == s
            and a.message is not None
            and a.message.src == reader
            and a.message.get("txn") == txn_id,
            start=request_sends[server].index,
        )
        if request_recv is None:
            raise TraceError(f"read request for {txn_id} never delivered at {server}")
        reply_send = trace.find(
            lambda a, s=server: _is_read_reply(a, txn_id, reader, s), start=request_recv.index
        )
        if reply_send is None:
            raise TraceError(f"server {server} never replied to {txn_id}")
        inner = [a for a in trace.between(request_recv.index, reply_send.index) if a.actor == server]
        foreign_inputs = [
            a
            for a in trace.between(request_recv.index, reply_send.index)
            if a.actor == server and a.is_input()
        ]
        if foreign_inputs:
            raise TraceError(
                f"server {server} received other input while serving {txn_id}: not a non-blocking fragment"
            )
        fragment = Fragment(
            actions=tuple([request_recv] + inner + [reply_send]), label=f"F({txn_id},{server})"
        )
        non_blocking.append((server, fragment))

    # Completion fragment at the reader.
    reply_recvs = []
    for server in servers:
        recv = trace.find(
            lambda a, s=server: a.kind == ActionKind.RECV
            and a.actor == reader
            and a.message is not None
            and a.message.src == s
            and a.message.get("txn") == txn_id,
        )
        if recv is None:
            raise TraceError(f"reply from {server} for {txn_id} never delivered at {reader}")
        reply_recvs.append(recv)
    last_reply = max(reply_recvs, key=lambda a: a.index)
    completion_actions = [last_reply] + [
        a for a in trace.between(last_reply.index, respond.index) if a.actor == reader
    ] + [respond]
    completion = Fragment(actions=tuple(completion_actions), label=f"E({txn_id})")

    return ReadFragments(
        txn_id=txn_id,
        reader=reader,
        invocation=invocation,
        non_blocking=tuple(non_blocking),
        completion=completion,
    )


# ----------------------------------------------------------------------
# Lemma 2: commuting fragments
# ----------------------------------------------------------------------
@dataclass
class CommuteCheck:
    """Why two fragments may (or may not) be commuted."""

    allowed: bool
    reason: str


def can_commute(first: Fragment, second: Fragment) -> CommuteCheck:
    """Check whether two adjacent fragments may be commuted.

    Conditions: each fragment's actions occur at a single automaton and the
    two automata are distinct, plus any one of:

    * (a) neither fragment contains an input action, or
    * (b) at least one of them contains no external action

    (the two cases of Lemma 2), or

    * (c) no message sent inside ``first`` is received inside ``second``

    — the dependency-preserving reordering of the Claim in Appendix B, which
    is what the paper actually leans on when it commutes two non-blocking
    fragments that each begin with a message receipt (e.g. ``F_{2,x}`` and
    ``F_{2,y}`` in Lemma 8).
    """
    first_actor = first.single_actor()
    second_actor = second.single_actor()
    if first_actor is None or second_actor is None:
        return CommuteCheck(False, "each fragment must occur at a single automaton")
    if first_actor == second_actor:
        return CommuteCheck(False, f"both fragments occur at {first_actor}; commuting needs distinct automata")
    no_inputs = not first.has_input_actions() and not second.has_input_actions()
    one_silent = not first.has_external_actions() or not second.has_external_actions()
    if no_inputs or one_silent:
        justification = "no input actions in either fragment" if no_inputs else "one fragment has no external actions"
        return CommuteCheck(True, justification)
    sent_by_first = {
        a.message.msg_id for a in first.actions if a.kind == ActionKind.SEND and a.message is not None
    }
    received_by_second = {
        a.message.msg_id for a in second.actions if a.kind == ActionKind.RECV and a.message is not None
    }
    if not (sent_by_first & received_by_second):
        return CommuteCheck(True, "no message sent in the first fragment is received in the second (Appendix B)")
    return CommuteCheck(False, "the second fragment receives a message sent by the first")


def commute_adjacent(
    actions: Sequence[Action],
    first: Fragment,
    second: Fragment,
    validate: bool = True,
) -> Tuple[Action, ...]:
    """Produce the action sequence with ``first ∘ second`` replaced by ``second ∘ first``.

    ``first`` and ``second`` must appear consecutively (as action subsequences)
    in ``actions``.  The Lemma 2 preconditions are checked; when ``validate``
    is set, the resulting sequence is additionally checked against the channel
    semantics (no receive before its send), so the caller gets an *execution*,
    not just a permutation.
    """
    check = can_commute(first, second)
    if not check.allowed:
        raise TraceError(f"cannot commute {first.label!r} and {second.label!r}: {check.reason}")

    combined = list(first.actions) + list(second.actions)
    sequence = list(actions)
    # Locate the contiguous occurrence of the combined block.
    block_len = len(combined)
    start = None
    for index in range(len(sequence) - block_len + 1):
        window = sequence[index : index + block_len]
        if all(w.same_step(c) for w, c in zip(window, combined)):
            start = index
            break
    if start is None:
        raise TraceError(
            f"fragments {first.label!r} and {second.label!r} are not adjacent in the given action sequence"
        )
    swapped = list(second.actions) + list(first.actions)
    new_sequence = sequence[:start] + swapped + sequence[start + block_len :]
    result = reindex(new_sequence)
    if validate:
        Trace(result).validate_channels()
    return result


# ----------------------------------------------------------------------
# Lemma 3: indistinguishability
# ----------------------------------------------------------------------
def indistinguishable_fragments(a: Fragment, b: Fragment) -> bool:
    """Whether two fragments are the same automaton-local computation.

    This is the hypothesis of Lemma 3: identical non-blocking fragments at a
    server imply the READ returns the same value for that server's object.
    """
    return a.same_steps(b)


def returned_value(fragment: Fragment) -> Optional[object]:
    """The value a non-blocking fragment sends back to the reader (if any)."""
    for action in reversed(fragment.actions):
        if action.kind == ActionKind.SEND and action.message is not None:
            value = action.message.get("value")
            if value is not None:
                return value
    return None
