"""Mechanical replay of Theorem 2: no SNOW with two clients and no C2C.

Section 5.1 closes the two-client open question: with a single reader, a
single writer and two servers, SNOW is impossible *unless* the clients may
message each other.  The proof again assumes an algorithm with all SNOW
properties and constructs, through the executions ``α, β, γ, η, δ^{(ℓ)} …``
of Figure 4, an execution in which the READ transaction returns the written
values ``(x₁, y₁)`` although it completes before the WRITE transaction is
even invoked — contradicting strict serializability.

The replay mirrors the proof's structure over symbolic fragments:

* ``β`` (Lemmas 15-16): after ``W`` completes, the reader's two request
  ``send`` actions happen back-to-back and both servers serve them in
  non-blocking fragments ``F₁ₓ ∘ F₁ᵧ``; by S the READ returns ``(x₁, y₁)``.
* ``γ/η`` (Lemmas 17-19): the two request sends commute to *before*
  ``INV(W)`` — they are output actions of the reader with no dependency on
  the WRITE — mechanically checked swaps.
* the induction of Theorem 2 peels the WRITE's actions past the read's
  non-blocking fragments one automaton at a time:

  - actions at the **writer** (``INV(W)``, ``RESP(W)``) commute past the
    read fragments (checked swaps — the paper's cases (i)/(ii));
  - the WRITE's **install at a server** shares that server with the read's
    fragment there, so it cannot simply commute (the replay asserts this);
    the paper's cases (iii)/(iv) instead *reconstruct* the read fragment
    earlier — the server must still answer (N), with one version (O), and by
    indistinguishability of the other server's fragment plus S the READ still
    returns ``(x₁, y₁)``.  These are recorded as justified steps.

* finally the induced transaction-level history (READ completes before
  ``INV(W)`` yet returns the written values) is rejected by the semantic
  strict-serializability checker, re-computing the contradiction.

The same replay run with client-to-client communication *enabled* would not
go through: algorithm A's writer messages the reader directly, so the
reader-side fragments carry a dependency on the WRITE and the very first
commuting step (Lemma 17) is refused.  :func:`c2c_breaks_the_chain`
demonstrates exactly that, which is the mechanised version of "why the proof
needs the no-C2C assumption".
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.serializability import check_strict_serializability
from ..txn.history import History, HistoryEntry
from ..txn.transactions import ReadResult, read, write, WRITE_OK
from ..ioa.errors import TraceError
from .symbolic import ProofReplay, SymbolicExecution, fragment


def build_beta(c2c_info_message: bool = False) -> SymbolicExecution:
    """The execution β of Lemma 16 (reader starts after the WRITE completes).

    When ``c2c_info_message`` is set, the writer additionally sends an
    ``info`` message to the reader before responding (exactly what algorithm
    A does); the reader's request sends then *receive* that message first,
    which is what blocks the impossibility chain in the C2C setting.
    """
    reader_receives = {"info"} if c2c_info_message else set()
    writer_sends = {"w_x", "w_y"} | ({"info"} if c2c_info_message else set())
    return SymbolicExecution(
        [
            fragment("P0", "*", movable=False, note="initial prefix (objects hold x0, y0)"),
            fragment("INV_W", "w", sends=writer_sends, txn="W", note="WRITE invoked; installs sent"),
            fragment("Wx", "sx", receives={"w_x"}, sends={"ack_x"}, txn="W", note="x1 installed at sx"),
            fragment("Wy", "sy", receives={"w_y"}, sends={"ack_y"}, txn="W", note="y1 installed at sy"),
            fragment("RESP_W", "w", receives={"ack_x", "ack_y"}, txn="W", note="WRITE responds ok"),
            fragment(
                "send_reqs",
                "r1",
                receives=frozenset(reader_receives),
                sends={"m_x", "m_y"},
                txn="R1",
                note="INV(R1); both request sends back-to-back (Lemma 15/16)",
            ),
            fragment("F1x", "sx", receives={"m_x"}, sends={"v_x"}, txn="R1", note="returns x1"),
            fragment("F1y", "sy", receives={"m_y"}, sends={"v_y"}, txn="R1", note="returns y1"),
            fragment("E1", "r1", receives={"v_x", "v_y"}, txn="R1", note="R1 responds (x1,y1)"),
            fragment("S", "*", movable=False, note="suffix"),
        ],
        name="beta",
    )


def _induced_history() -> History:
    """READ completes before the WRITE is invoked, yet returns the written values."""
    r1 = read("ox", "oy", txn_id="R1")
    w = write(ox=1, oy=1, txn_id="W")
    entries = [
        HistoryEntry(
            txn=r1,
            client="r1",
            invoke_index=0,
            respond_index=1,
            result=ReadResult.from_mapping({"ox": 1, "oy": 1}),
        ),
        HistoryEntry(txn=w, client="w", invoke_index=2, respond_index=3, result=WRITE_OK),
    ]
    return History(entries, objects=("ox", "oy"), initial_value=0)


def replay_theorem2() -> ProofReplay:
    """Replay the Figure 4 chain and recompute the final contradiction."""
    replay = ProofReplay(
        theorem="Theorem 2: SNOW is impossible with two clients and two servers without C2C communication"
    )

    execution = build_beta(c2c_info_message=False)
    replay.record(
        "Lemmas 15-16 (α, β)",
        "Assume an algorithm A with all SNOW properties and no client-to-client channel.  After W completes, "
        "the reader's two request sends occur consecutively (O), and each server serves its request in a "
        "non-blocking fragment (N, O).  By S the READ returns (x1, y1).",
        execution,
        mechanically_checked=False,
    )

    # ------------------------------------------------------------------
    # Lemma 17/19 (γ, η): the request sends move before INV(W).
    # ------------------------------------------------------------------
    reasons = execution.move_before("send_reqs", "INV_W")
    execution.name = "gamma"
    replay.record(
        "Lemmas 17-19 (γ, η)",
        f"The reader's request sends commute to before INV(W) ({len(reasons)} checked swaps): without C2C the "
        "reader fragment neither receives anything from the WRITE nor shares an automaton with it.  The servers' "
        "fragments are untouched, so by Lemma 18 the READ still returns (x1, y1).",
        execution,
    )

    # ------------------------------------------------------------------
    # Induction, case (i): actions at the writer commute past the read fragments.
    # ------------------------------------------------------------------
    reasons = execution.move_after("RESP_W", "E1")
    execution.name = "delta-resp-w"
    replay.record(
        "Theorem 2, case (i) — prefix action at w",
        f"RESP(W) commutes past F1x, F1y and E1 ({len(reasons)} checked swaps): it occurs at the writer and the "
        "read fragments neither occur at w nor receive the write acks.  F1x and F1y are unchanged, so the READ "
        "still returns (x1, y1).",
        execution,
    )

    # ------------------------------------------------------------------
    # Case (iv): the install at sy conflicts with F1y — reconstructed, not commuted.
    # ------------------------------------------------------------------
    allowed, reason = execution.can_swap(execution.get("Wy"), execution.get("F1y"))
    if allowed:  # pragma: no cover - would indicate the model lost the conflict
        raise TraceError("the install at sy must conflict with F1y; the model is wrong")
    reasons = execution.move_before("F1x", "Wy")
    wy_index = execution.index_of("Wy")
    f1y_index = execution.index_of("F1y")
    execution._fragments[wy_index], execution._fragments[f1y_index] = (
        execution._fragments[f1y_index],
        execution._fragments[wy_index],
    )
    reasons_after = execution.move_after("Wy", "E1")
    execution.name = "delta-wy"
    replay.record(
        "Theorem 2, case (iv) — prefix action at sy",
        "The WRITE's install at sy cannot be commuted past F1y (" + reason + ").  Following the paper, F1x first "
        f"commutes before the install ({len(reasons)} checked swaps); the network then delivers the read request "
        "at sy immediately, and by N and O the server must answer with one value; F1x is unchanged, so by "
        "Lemma 3 and S the READ still returns (x1, y1), i.e. the reconstructed F1y returns y1.  The install then "
        f"commutes after the read ({len(reasons_after)} checked swaps).",
        execution,
        mechanically_checked=False,
    )

    # ------------------------------------------------------------------
    # Case (iii): the install at sx conflicts with F1x — reconstructed, not commuted.
    # ------------------------------------------------------------------
    allowed, reason = execution.can_swap(execution.get("Wx"), execution.get("F1x"))
    if allowed:  # pragma: no cover
        raise TraceError("the install at sx must conflict with F1x; the model is wrong")
    wx_index = execution.index_of("Wx")
    f1x_index = execution.index_of("F1x")
    execution._fragments[wx_index], execution._fragments[f1x_index] = (
        execution._fragments[f1x_index],
        execution._fragments[wx_index],
    )
    reasons_after = execution.move_after("Wx", "E1")
    execution.name = "delta-wx"
    replay.record(
        "Theorem 2, case (iii) — prefix action at sx",
        "Symmetrically, the install at sx cannot be commuted past F1x (" + reason + "); the read request is "
        "delivered at sx first, N and O force an immediate one-version answer, and by Lemma 3 applied to the "
        "unchanged F1y plus the S property the READ still returns (x1, y1).  The install then commutes after "
        f"the read ({len(reasons_after)} checked swaps).",
        execution,
        mechanically_checked=False,
    )

    # ------------------------------------------------------------------
    # Case (i) again: INV(W) commutes past the read fragments (stays before its installs).
    # ------------------------------------------------------------------
    reasons = execution.move_before("INV_W", "Wx")
    execution.name = "delta-final"
    replay.record(
        "Theorem 2, case (i) — INV(W)",
        f"INV(W) commutes past the read fragments ({len(reasons)} checked swaps) but must stay before its own "
        "install messages (the dependency check would refuse anything else).  The READ now completes before "
        "the WRITE is invoked.",
        execution,
    )

    # ------------------------------------------------------------------
    # The contradiction, recomputed semantically.
    # ------------------------------------------------------------------
    order = execution.transaction_order(("R1", "W"))
    replay.final_execution = execution
    if order != ("R1", "W"):
        replay.contradiction_found = False
        replay.contradiction_note = f"unexpected transaction order {order}"
        return replay
    verdict = check_strict_serializability(_induced_history())
    if not verdict.ok:
        replay.contradiction_found = True
        replay.contradiction_note = (
            "the READ completes before INV(W) yet returns (x1, y1); the semantic checker confirms no strict "
            "serialization exists: " + "; ".join(verdict.violations)
        )
    else:  # pragma: no cover
        replay.contradiction_found = False
        replay.contradiction_note = "semantic checker unexpectedly accepted the final history"
    return replay


def c2c_breaks_the_chain() -> Tuple[bool, str]:
    """Show that with client-to-client communication the chain's first step fails.

    With algorithm A's ``info-reader`` message in place, the reader's request
    fragment *receives* a message sent by the WRITE, so moving the request
    sends before ``INV(W)`` is not a legal reordering — exactly the reason
    SNOW becomes possible in the MWSR + C2C setting (Theorem 3).

    Returns ``(blocked, reason)``.
    """
    execution = build_beta(c2c_info_message=True)
    try:
        execution.move_before("send_reqs", "INV_W")
    except TraceError as exc:
        return True, str(exc)
    return False, "the commuting chain unexpectedly went through despite the C2C dependency"
