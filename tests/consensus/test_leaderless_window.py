"""Regression: the leaderless window is bounded by the election timeout.

After the leader fail-stops, the time until a survivor is elected is governed
by the randomized election timeout ``(low, high)``: a follower's running
timer may get one "grace" window (the leader showed signs of life while it
was armed), so the window is at most two full windows plus the election
exchange itself — and never shorter than one minimum window (timers cannot
fire early).  Both bounds are checked across seeds and the window must scale
with the configured range (the knob actually steers the system).
"""

from __future__ import annotations

import pytest

from tests.consensus.conftest import (
    consensus_internals,
    leader_crash_plan,
    run_consensus_workload,
)

CRASH_AT = 12
#: election exchange slack: vote round trips + commit of the no-op entry
ELECTION_SLACK = 20
SEEDS = (0, 1, 2, 3, 4)


def leaderless_window(seed: int, timeout) -> int:
    handle = run_consensus_workload(
        "algorithm-b",
        consensus_factor=3,
        plan=leader_crash_plan(at=CRASH_AT, seed=seed),
        seed=seed,
        election_timeout=timeout,
    )
    assert not handle.simulation.incomplete_transactions()
    elected = [
        i for i in consensus_internals(handle) if i["consensus"] == "became-leader"
    ]
    assert elected, "the crash must trigger a re-election"
    return elected[0]["vtime"] - CRASH_AT


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("timeout", [(20, 30), (40, 80)])
def test_window_bounded_by_two_timeout_windows(seed, timeout):
    low, high = timeout
    window = leaderless_window(seed, timeout)
    assert low <= window <= 2 * high + ELECTION_SLACK, (seed, timeout, window)


def test_window_scales_with_the_timeout_range():
    """Doubling the timeout range must lengthen the window — the knob steers."""
    small = [leaderless_window(seed, (20, 30)) for seed in SEEDS]
    large = [leaderless_window(seed, (120, 160)) for seed in SEEDS]
    assert max(small) < min(large)
