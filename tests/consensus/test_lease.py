"""Leader leases and the consensus read fast path (ISSUE 10 tentpole).

Three layers of assurance, mirroring the ISSUE's "safety three ways":

* **behaviour** — a leased run serves read-only coordinator requests
  locally from the applied state machine (no log entry, no quorum round
  per read), returns the same values as the unleased run, and emits the
  lease lifecycle internals (``lease-acquired`` / ``lease-renewed`` /
  ``lease-expired`` / ``local-read``) the metrics plane counts;
* **the election boundary** (the satellite-5 schedule) — the old leader
  partitioned mid-lease must never serve a read once a new leader could
  have committed a write: candidates wait out the promised window, so the
  streaming :class:`~repro.obs.LeaseSafetyMonitor` and the post-mortem
  checker both stay green across seeds;
* **white-box negatives** — hand-forged violating action sequences trip
  the monitor at the exact offending trace index, and the offline checker
  (``tests/invariants.check_lease_safety``'s engine) reports the *same*
  indices — online/offline parity, exercised on the failing side.
"""

from __future__ import annotations

import pytest

from repro.consensus import LeasePolicy
from repro.faults import ChaosScheduler, FaultPlan
from repro.faults.plan import Partition, RetryPolicy
from repro.ioa import FIFOScheduler, RandomScheduler
from repro.ioa.actions import Action, ActionKind
from repro.obs import MonitorSuite, ObservabilityPlane
from repro.obs.monitor import LeaseSafetyMonitor, offline_lease_violations

from tests import invariants
from tests.consensus.conftest import COORDINATOR_PROTOCOLS, run_consensus_workload
from tests.replication.conftest import run_fixed_workload

pytestmark = pytest.mark.invariants


def lease_internals(handle, *kinds):
    return [
        dict(action.info)
        for action in handle.trace()
        if action.info and dict(action.info).get("consensus") in kinds
    ]


# ----------------------------------------------------------------------
# The lease policy knob
# ----------------------------------------------------------------------
def test_lease_policy_normalisation():
    assert LeasePolicy.of(True) == LeasePolicy()
    assert LeasePolicy.of(25) == LeasePolicy(duration=25)
    policy = LeasePolicy(duration=7)
    assert LeasePolicy.of(policy) is policy


def test_lease_policy_rejects_nonsense():
    for bad in (0, -3, False, "long"):
        with pytest.raises((TypeError, ValueError)):
            LeasePolicy.of(bad)


def test_lease_duration_never_exceeds_the_election_timeout():
    """The safety linchpin: a promise must outlive any window it helped
    prove, so the duration is capped at the election timeout's low bound."""
    assert LeasePolicy().resolve((40, 80)) == 40
    assert LeasePolicy(duration=25).resolve((40, 80)) == 25
    assert LeasePolicy(duration=500).resolve((40, 80)) == 40


def test_leases_require_consensus_members():
    with pytest.raises(ValueError, match="consensus_factor"):
        run_fixed_workload("algorithm-b", leases=True)


# ----------------------------------------------------------------------
# Behaviour: the read fast path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ("algorithm-b", "algorithm-c"))
def test_leased_reads_bypass_the_log(protocol):
    """Every ``get-tag-arr`` is served locally under a proven window: the
    run emits ``local-read`` internals, commits no read entries, and the
    read values match the unleased run's."""
    leased = run_consensus_workload(protocol, leases=True, scheduler=FIFOScheduler())
    plain = run_consensus_workload(protocol, leases=None, scheduler=FIFOScheduler())
    local = lease_internals(leased, "local-read")
    assert local, "leased run never served a read locally"
    assert lease_internals(leased, "lease-acquired")
    member = leased.simulation.automaton("coor")
    committed = [
        member.log.entry(i).request_id
        for i in range(member.log.snapshot_index + 1, member.log.commit_index + 1)
    ]
    assert not any(rid.startswith("get-tag-arr/") for rid in committed)
    assert leased.history().results() == plain.history().results()


def test_every_local_read_lands_inside_its_announced_window():
    handle = run_consensus_workload("algorithm-b", leases=True)
    for info in lease_internals(handle, "local-read"):
        assert int(info["vtime"]) < int(info["until"]), info
    assert offline_lease_violations(handle.trace()) == []


def test_lease_expiry_is_observable():
    """Under the chaos scheduler virtual time outruns a quiescent lease;
    the next read logs exactly one ``lease-expired`` per lapse and then
    re-proves a fresh window."""
    handle = run_consensus_workload(
        "algorithm-b",
        leases=True,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
    )
    expiries = lease_internals(handle, "lease-expired")
    acquisitions = lease_internals(handle, "lease-acquired")
    assert expiries, "chaos run never let a lease lapse"
    assert len(acquisitions) >= len(expiries)


def test_streaming_monitor_watches_a_leased_run():
    plane = ObservabilityPlane(monitors=True)
    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        consensus_factor=3,
        leases=True,
        obs=plane,
        run_to_completion=False,
    )
    assert plane.monitors.ok, [a.describe() for a in plane.monitors.alerts]
    assert lease_internals(handle, "local-read")


# ----------------------------------------------------------------------
# The election boundary (satellite 5)
# ----------------------------------------------------------------------
def leader_partition_plan(seed: int) -> FaultPlan:
    """The old leader cut off from its peers mid-lease, healed later:
    clients still reach it, so any read it parks must wait out the window
    it can no longer extend while the majority side elects and commits."""
    return FaultPlan(
        name="lease-holder-partition",
        partitions=(
            Partition(left=("coor",), right=("coor.2", "coor.3"), start=8, heal=120),
        ),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


@pytest.mark.parametrize("seed", range(5))
def test_no_stale_read_across_the_election_boundary(seed):
    """The stale-read schedule leases exist to forbid: partition the lease
    holder mid-window, let the majority elect a new leader and commit, and
    require — by the streaming monitor *and* the post-mortem checker —
    that no read is ever served outside a proven window."""
    plane = ObservabilityPlane(monitors=True)
    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
        consensus_factor=3,
        leases=True,
        plan=leader_partition_plan(seed),
        obs=plane,
        run_to_completion=False,
    )
    # The schedule really crossed the boundary: lease activity existed and
    # the majority side moved to a later term while "coor" was cut off.
    assert lease_internals(handle, "lease-acquired"), seed
    terms = [int(i["term"]) for i in lease_internals(handle, "became-leader")]
    assert terms and max(terms) >= 2, (seed, terms)
    # Safety, both ways — the monitor saw every action as it appended, the
    # checker replays the finished trace; both must agree there is nothing.
    lease_alerts = [a for a in plane.monitors.alerts if a.monitor == "lease-safety"]
    assert not lease_alerts, [a.describe() for a in lease_alerts]
    assert offline_lease_violations(handle.trace()) == []
    assert not handle.simulation.incomplete_transactions(), seed
    assert handle.serializability().ok, seed
    invariants.check_all(handle)


# ----------------------------------------------------------------------
# White-box negatives: the monitor trips, at the exact index, both ways
# ----------------------------------------------------------------------
def internal(actor, **info):
    return Action(kind=ActionKind.INTERNAL, actor=actor, info=tuple(info.items()))


def window(member, term, start, until):
    return internal(
        member,
        consensus="lease-acquired",
        term=term,
        member=member,
        start=start,
        until=until,
        vtime=start,
    )


def local_read(member, term, vtime, until=0):
    return internal(
        member,
        consensus="local-read",
        term=term,
        member=member,
        request="get-tag-arr/R1",
        vtime=vtime,
        until=until,
    )


def elected(member, term, vtime):
    return internal(
        member, consensus="became-leader", term=term, member=member, vtime=vtime
    )


def assert_parity(actions, expected_indices):
    """The streaming suite and the offline replay flag the same indices."""
    suite = MonitorSuite(monitors=(LeaseSafetyMonitor(),))
    for action in actions:
        suite.on_action(action)
    assert [a.trace_index for a in suite.alerts] == list(expected_indices)
    assert [i for i, _ in offline_lease_violations(actions)] == list(expected_indices)


def test_monitor_accepts_a_clean_lease_history():
    assert_parity(
        [
            elected("m1", 1, 0),
            window("m1", 1, 5, 45),
            local_read("m1", 1, 10, until=45),
            window("m1", 1, 20, 60),  # the holder extending itself is benign
            local_read("m1", 1, 59, until=60),
            elected("m2", 2, 60),  # after expiry: fine
            window("m2", 2, 61, 101),
        ],
        [],
    )


def test_monitor_flags_a_read_outside_any_window():
    assert_parity([local_read("m1", 1, 10)], [0])


def test_monitor_flags_a_read_after_expiry():
    assert_parity(
        [window("m1", 1, 5, 45), local_read("m1", 1, 45, until=45)],
        [1],
    )


def test_monitor_flags_a_read_under_a_stale_term_window():
    assert_parity(
        [window("m1", 1, 5, 45), local_read("m1", 2, 10, until=45)],
        [1],
    )


def test_monitor_flags_overlapping_windows_across_members():
    assert_parity(
        [window("m1", 1, 5, 45), window("m2", 2, 30, 70)],
        [1],
    )


def test_monitor_accepts_a_stale_proof_of_a_dead_window():
    """Acks delayed across a partition can prove a window wholly in the
    past *after* the new leader announced its own — the intervals do not
    overlap, no read can be served in the dead window, so it is noise,
    not a violation (the schedule seed 2 of the election-boundary test
    actually produces)."""
    assert_parity(
        [window("m2", 2, 88, 128), window("m1", 1, 6, 46)],
        [],
    )


def test_monitor_flags_an_election_inside_a_live_foreign_window():
    assert_parity(
        [window("m1", 1, 5, 45), elected("m2", 2, 20)],
        [1],
    )
