"""Consensus-under-chaos grids (ROADMAP open item).

``sweep_consensus_factor``-style executions crossed with the fault scenario
library — message loss, a partition isolating one member, crash-with-amnesia
of a member and of the leader — across ≥5 seeds, asserting the safety
invariants (via the shared checker in ``tests/invariants.py``) and full
availability on every cell.

Two regressions are pinned alongside the grid:

* **stale-candidate livelock** — a member returning from a healed partition
  with buffered-but-long-committed requests used to depose the quiescent
  leader and campaign forever (nobody re-replicated without heartbeats).
  The repair rule — refusing voters with better logs campaign themselves —
  bounds the disruption; the grid's member-partition column would hang
  without it.
* **the durable-state assumption** — Raft's election safety requires
  term/vote to survive crashes.  A crash-with-amnesia member *can* double
  vote; the white-box test documents exactly that hazard (xfail), while the
  grid shows the end-to-end schedules where recovery happens between
  elections stay safe.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import ChaosScheduler, FaultPlan
from repro.faults.plan import CrashEvent, DropPolicy, Partition, RetryPolicy
from repro.ioa import RandomScheduler

from tests import invariants
from tests.consensus.conftest import COORDINATOR_PROTOCOLS, run_consensus_workload

#: ``CHAOS_GRID_SEEDS`` (env) widens the grid — the nightly CI chaos-grid
#: job runs with 20 seeds, PRs and local runs with the default 5.
SEEDS = tuple(range(int(os.environ.get("CHAOS_GRID_SEEDS", "5"))))

pytestmark = pytest.mark.invariants


def chaos_plan(scenario: str, seed: int) -> FaultPlan:
    retry = RetryPolicy(timeout_steps=10, max_attempts=8)
    if scenario == "lossy":
        return FaultPlan(
            name="lossy",
            drops=DropPolicy(probability=0.15, max_consecutive=4),
            retry=retry,
            seed=seed,
        )
    if scenario == "member-partition":
        # One member cut off from its peers, healed mid-run; clients still
        # reach it, so it buffers requests the group commits without it.
        return FaultPlan(
            name="member-partition",
            partitions=(
                Partition(left=("coor.3",), right=("coor", "coor.2"), start=6, heal=60),
            ),
            seed=seed,
        )
    if scenario == "amnesia-member":
        return FaultPlan(
            name="amnesia-member",
            crashes=(CrashEvent(server="coor.2", at=10, recover=45, preserve_state=False),),
            retry=retry,
            seed=seed,
        )
    if scenario == "amnesia-leader":
        return FaultPlan(
            name="amnesia-leader",
            crashes=(CrashEvent(server="coor", at=10, recover=45, preserve_state=False),),
            retry=retry,
            seed=seed,
        )
    raise ValueError(scenario)


SCENARIOS = ("lossy", "member-partition", "amnesia-member", "amnesia-leader")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_chaos_grid_cell(protocol, scenario, seed):
    """Every protocol × scenario × seed cell completes with the safety
    invariants intact (checked again by the autouse fixture)."""
    handle = run_consensus_workload(
        protocol,
        consensus_factor=3,
        plan=chaos_plan(scenario, seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
    )
    assert not handle.simulation.incomplete_transactions(), (protocol, scenario, seed)
    invariants.check_all(handle)
    assert handle.serializability().ok, (protocol, scenario, seed)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_healed_partition_member_catches_up_and_group_quiesces(seed):
    """After the heal, the repair rule elects a healthy member whose
    replication drains the stale member's buffer: its log converges and no
    election timer stays armed (the run reached idle, so this is the
    quiescent state)."""
    handle = run_consensus_workload(
        "algorithm-b",
        consensus_factor=3,
        plan=chaos_plan("member-partition", seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
    )
    members = invariants.consensus_members(handle)
    assert len({m.log.commit_index for m in members}) == 1
    stale = handle.simulation.automaton("coor.3")
    assert not stale.pending, "healed member still holds buffered requests"


@pytest.mark.xfail(
    reason="Raft's election safety assumes term/vote survive crashes; a "
    "crash-with-amnesia member forgets its vote and can grant a second, "
    "conflicting vote in the same term (the double-vote hazard the "
    "ReplicatedCoordinator.forget docstring documents). Durable member "
    "state — persisting term/vote across the outage — is the fix.",
    strict=True,
)
def test_amnesiac_member_must_not_double_vote():
    """White-box: where the durable-state assumption bites.  One member
    grants its term-2 vote to candidate X, crashes with amnesia, and is then
    asked by candidate Y — with amnesia it forgets the first grant and votes
    again, so two leaders of the same term become possible."""
    handle = run_consensus_workload("algorithm-b", consensus_factor=3)
    member = handle.simulation.automaton("coor.2")
    member.election.step_down(2)
    assert member.election.may_grant("coor", 2)
    member.election.grant("coor")
    assert not member.election.may_grant("coor.3", 2)  # vote is taken
    member.forget()  # amnesiac outage: term and vote are gone
    member.election.step_down(2)
    assert not member.election.may_grant(
        "coor.3", 2
    ), "amnesiac member re-granted a vote it already cast this term"
