"""Consensus-under-chaos grids (ROADMAP open item).

``sweep_consensus_factor``-style executions crossed with the fault scenario
library — message loss, a partition isolating one member, crash-with-amnesia
of a member and of the leader — across ≥5 seeds, asserting the safety
invariants (via the shared checker in ``tests/invariants.py``) and full
availability on every cell.

Two regressions are pinned alongside the grid:

* **stale-candidate livelock** — a member returning from a healed partition
  with buffered-but-long-committed requests used to depose the quiescent
  leader and campaign forever (nobody re-replicated without heartbeats).
  The repair rule — refusing voters with better logs campaign themselves —
  bounds the disruption; the grid's member-partition column would hang
  without it.
* **the durable-state assumption** — Raft's election safety requires
  term/vote to survive crashes.  A crash-with-amnesia member *can* double
  vote; the white-box pair documents exactly that hazard (strict xfail with
  volatile members) *and* its fix (the same schedule passes once a
  :class:`~repro.persist.PersistencePolicy` attaches stable storage, PR 9),
  while the grid shows the end-to-end schedules where recovery happens
  between elections stay safe.  The persistence grid re-runs the amnesia
  scenarios with durable members — now the *state* also rides through the
  outage, not just the safety invariants.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import ChaosScheduler, FaultPlan
from repro.faults.plan import CrashEvent, DropPolicy, Partition, RetryPolicy
from repro.ioa import RandomScheduler
from repro.persist import PersistencePolicy

from tests import invariants
from tests.consensus.conftest import COORDINATOR_PROTOCOLS, run_consensus_workload

#: ``CHAOS_GRID_SEEDS`` (env) widens the grid — the nightly CI chaos-grid
#: job runs with 20 seeds, PRs and local runs with the default 5.
SEEDS = tuple(range(int(os.environ.get("CHAOS_GRID_SEEDS", "5"))))

pytestmark = pytest.mark.invariants


def chaos_plan(scenario: str, seed: int) -> FaultPlan:
    retry = RetryPolicy(timeout_steps=10, max_attempts=8)
    if scenario == "lossy":
        return FaultPlan(
            name="lossy",
            drops=DropPolicy(probability=0.15, max_consecutive=4),
            retry=retry,
            seed=seed,
        )
    if scenario == "member-partition":
        # One member cut off from its peers, healed mid-run; clients still
        # reach it, so it buffers requests the group commits without it.
        return FaultPlan(
            name="member-partition",
            partitions=(
                Partition(left=("coor.3",), right=("coor", "coor.2"), start=6, heal=60),
            ),
            seed=seed,
        )
    if scenario == "amnesia-member":
        return FaultPlan(
            name="amnesia-member",
            crashes=(CrashEvent(server="coor.2", at=10, recover=45, preserve_state=False),),
            retry=retry,
            seed=seed,
        )
    if scenario == "amnesia-leader":
        return FaultPlan(
            name="amnesia-leader",
            crashes=(CrashEvent(server="coor", at=10, recover=45, preserve_state=False),),
            retry=retry,
            seed=seed,
        )
    raise ValueError(scenario)


SCENARIOS = ("lossy", "member-partition", "amnesia-member", "amnesia-leader")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_chaos_grid_cell(protocol, scenario, seed):
    """Every protocol × scenario × seed cell completes with the safety
    invariants intact (checked again by the autouse fixture)."""
    handle = run_consensus_workload(
        protocol,
        consensus_factor=3,
        plan=chaos_plan(scenario, seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
    )
    assert not handle.simulation.incomplete_transactions(), (protocol, scenario, seed)
    invariants.check_all(handle)
    assert handle.serializability().ok, (protocol, scenario, seed)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_healed_partition_member_catches_up_and_group_quiesces(seed):
    """After the heal, the repair rule elects a healthy member whose
    replication drains the stale member's buffer: its log converges and no
    election timer stays armed (the run reached idle, so this is the
    quiescent state)."""
    handle = run_consensus_workload(
        "algorithm-b",
        consensus_factor=3,
        plan=chaos_plan("member-partition", seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
    )
    members = invariants.consensus_members(handle)
    assert len({m.log.commit_index for m in members}) == 1
    stale = handle.simulation.automaton("coor.3")
    assert not stale.pending, "healed member still holds buffered requests"


def _double_vote_schedule(persistence):
    """Drive the double-vote schedule; returns whether the second grant in
    the same term was (wrongly) possible after the amnesiac outage."""
    handle = run_consensus_workload(
        "algorithm-b", consensus_factor=3, persistence=persistence
    )
    member = handle.simulation.automaton("coor.2")
    member.election.step_down(2)
    assert member.election.may_grant("coor", 2)
    member.election.grant("coor")
    assert not member.election.may_grant("coor.3", 2)  # vote is taken
    member.forget()  # amnesiac outage: volatile term and vote are gone
    member.election.step_down(2)
    return member.election.may_grant("coor.3", 2)


@pytest.mark.xfail(
    reason="Raft's election safety assumes term/vote survive crashes; a "
    "crash-with-amnesia member forgets its vote and can grant a second, "
    "conflicting vote in the same term (the double-vote hazard the "
    "ReplicatedCoordinator.forget docstring documents). Durable member "
    "state — persisting term/vote across the outage — is the fix; see "
    "the sibling test with stable storage attached.",
    strict=True,
)
def test_amnesiac_member_double_vote_hazard_without_persistence():
    """White-box: where the durable-state assumption bites.  One member
    grants its term-2 vote to candidate X, crashes with amnesia, and is then
    asked by candidate Y — with amnesia it forgets the first grant and votes
    again, so two leaders of the same term become possible."""
    assert not _double_vote_schedule(
        None
    ), "amnesiac member re-granted a vote it already cast this term"


def test_amnesiac_member_with_stable_storage_must_not_double_vote():
    """The fix for the hazard above: with a stable store attached (PR 9),
    ``forget()`` recovers term/vote from storage, so the exact schedule
    that double-votes with volatile members refuses the second grant."""
    assert not _double_vote_schedule(
        PersistencePolicy()
    ), "durable member re-granted a vote it already cast this term"


# ----------------------------------------------------------------------
# The lease grid: the read fast path under chaos (ISSUE 10)
# ----------------------------------------------------------------------
def lease_chaos_plan(scenario: str, seed: int) -> FaultPlan:
    retry = RetryPolicy(timeout_steps=10, max_attempts=8)
    if scenario == "lease-leader-crash":
        # The lease holder fail-stops mid-window and returns with state.
        return FaultPlan(
            name="lease-leader-crash",
            crashes=(CrashEvent(server="coor", at=10, recover=45, preserve_state=True),),
            retry=retry,
            seed=seed,
        )
    if scenario == "lease-holder-partition":
        # The holder cut off from its peers mid-window: it cannot extend,
        # the majority elects once the promised window lapses.
        return FaultPlan(
            name="lease-holder-partition",
            partitions=(
                Partition(left=("coor",), right=("coor.2", "coor.3"), start=8, heal=120),
            ),
            retry=retry,
            seed=seed,
        )
    if scenario == "lease-amnesia-restart":
        # Crash-with-amnesia of the holder: the virtual clock is global
        # (no skew across the restart), so the recovered member re-proves
        # from scratch rather than trusting any remembered window.
        return FaultPlan(
            name="lease-amnesia-restart",
            crashes=(CrashEvent(server="coor", at=10, recover=45, preserve_state=False),),
            retry=retry,
            seed=seed,
        )
    raise ValueError(scenario)


LEASE_SCENARIOS = ("lease-leader-crash", "lease-holder-partition", "lease-amnesia-restart")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", LEASE_SCENARIOS)
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_lease_chaos_grid_cell(protocol, scenario, seed):
    """The chaos grid with the read fast path armed: leader crash
    mid-lease, partition of the lease holder, and an amnesia restart all
    keep every safety invariant — including lease safety, online and
    post-mortem — with full availability."""
    handle = run_consensus_workload(
        protocol,
        consensus_factor=3,
        plan=lease_chaos_plan(scenario, seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
        leases=True,
    )
    assert not handle.simulation.incomplete_transactions(), (protocol, scenario, seed)
    invariants.check_all(handle)  # includes check_lease_safety
    assert handle.serializability().ok, (protocol, scenario, seed)


# ----------------------------------------------------------------------
# The persistence grid: amnesia scenarios with durable members (PR 9)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", ("amnesia-member", "amnesia-leader"))
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_persistence_grid_cell(protocol, scenario, seed):
    """The amnesia columns of the grid with stable storage attached: every
    cell still completes with the invariants intact, and the crashed member
    provably recovered its durable state instead of resetting."""
    handle = run_consensus_workload(
        protocol,
        consensus_factor=3,
        plan=chaos_plan(scenario, seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
        persistence=PersistencePolicy(compact_every=4),
    )
    assert not handle.simulation.incomplete_transactions(), (protocol, scenario, seed)
    invariants.check_all(handle)
    assert handle.serializability().ok, (protocol, scenario, seed)
    crashed = "coor.2" if scenario == "amnesia-member" else "coor"
    member = handle.simulation.automaton(crashed)
    assert member.recoveries >= 1, "amnesiac member never took the recovery path"
    amnesia = [
        dict(action.info)
        for action in handle.trace()
        if action.info
        and dict(action.info).get("fault") == "amnesia"
        and action.actor == crashed
    ]
    assert amnesia and all(a.get("durable") == "recovered" for a in amnesia)
