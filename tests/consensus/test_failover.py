"""Acceptance: leader failover with unchanged verdicts (the ISSUE criterion).

With ``consensus_factor=3``, fail-stopping the coordinator's leader mid-run
must yield a re-election and full availability after the leaderless window,
with SNOW / Lemma-20 verdicts and read results identical to the fault-free
factor-3 run.  At ``consensus_factor=1`` the same crash (of the designated
first server) stalls every coordinator-dependent transaction — the single
point of failure the subsystem removes.
"""

from __future__ import annotations

import pytest

from repro.faults import coordinator_failover

from tests.consensus.conftest import (
    COORDINATOR_PROTOCOLS,
    consensus_internals,
    leader_crash_plan,
    run_consensus_workload,
)


def read_results(handle):
    return {
        str(r.txn_id): r.result
        for r in handle.simulation.transaction_records()
        if str(r.txn_id).startswith("R")
    }


@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_leader_crash_is_absorbed_at_cf3(protocol):
    baseline = run_consensus_workload(protocol, consensus_factor=3)
    crashed = run_consensus_workload(protocol, consensus_factor=3, plan=leader_crash_plan())

    # Availability: every transaction completed despite the dead leader.
    assert not crashed.simulation.incomplete_transactions()

    # A re-election actually happened (this was not a lucky routing accident).
    elected = [
        i for i in consensus_internals(crashed) if i["consensus"] == "became-leader"
    ]
    assert elected and all(i["member"] != "coor" for i in elected)

    # Same SNOW verdict, same Lemma-20 verdict, same values read.
    assert (
        crashed.snow_report().property_string()
        == baseline.snow_report().property_string()
    )
    assert baseline.serializability().ok and crashed.serializability().ok
    assert read_results(crashed) == read_results(baseline)


@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_same_crash_stalls_the_single_coordinator_at_cf1(protocol):
    """The contrast cell: at cf=1 the 'leader' is the designated first server."""
    crashed = run_consensus_workload(
        protocol,
        consensus_factor=1,
        plan=coordinator_failover(leader="sx", at=12, seed=3),
    )
    assert crashed.simulation.incomplete_transactions()


@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_fault_free_cf3_holds_no_elections(protocol):
    """The bootstrap leader just leads: elections only happen under faults."""
    handle = run_consensus_workload(protocol, consensus_factor=3, run_to_completion=True)
    assert all(
        i["consensus"] not in ("candidacy", "became-leader")
        for i in consensus_internals(handle)
    )


@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_cf3_matches_cf1_results_fault_free(protocol):
    """Replicating the coordinator is client-transparent when nothing fails.

    Only the real-time-ordered read (R2, submitted ``after`` W2) has a
    deployment-independent answer; R1 races W1 and may legally land on either
    side of it — consensus changes timing, and both outcomes are covered by
    the (asserted-identical) serializability verdicts.
    """
    single = run_consensus_workload(protocol, consensus_factor=1, run_to_completion=True)
    replicated = run_consensus_workload(protocol, consensus_factor=3, run_to_completion=True)
    assert read_results(single)["R2"] == read_results(replicated)["R2"]
    assert (
        single.snow_report().property_string()
        == replicated.snow_report().property_string()
    )


def test_failover_composes_with_replication():
    """rf=3 + cf=3: crash a storage replica AND the consensus leader."""
    from repro.faults import FaultPlan
    from repro.faults.plan import CrashEvent

    plan = FaultPlan(
        name="double-crash",
        crashes=(
            CrashEvent(server="coor", at=12, recover=None),
            CrashEvent(server="sx.3", at=6, recover=None),
        ),
        seed=3,
    )
    from tests.replication.conftest import run_fixed_workload
    from repro.faults import ChaosScheduler
    from repro.ioa import FIFOScheduler

    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        replication_factor=3,
        quorum="majority",
        consensus_factor=3,
        plan=plan,
        run_to_completion=False,
    )
    assert not handle.simulation.incomplete_transactions()
    assert handle.snow_report().satisfies_s
    assert any(
        i["consensus"] == "became-leader" for i in consensus_internals(handle)
    )


def test_failover_is_deterministic():
    def signature(seed):
        handle = run_consensus_workload(
            "algorithm-b", consensus_factor=3, plan=leader_crash_plan(seed=seed), seed=seed
        )
        return handle.trace().signature()

    assert signature(5) == signature(5)
