"""Consensus safety invariants as trace/state assertions across seeds.

The three Raft safety properties, checked on real executions (leader crash +
randomized chaos schedules, several seeds):

* **election safety** — at most one leader is elected per term;
* **log matching** — any two members' logs agree on every index where both
  have an entry with the same term, and committed prefixes agree outright;
* **state-machine safety** — the sequences of applied requests at any two
  members are prefix-consistent (no member ever applies a different request
  at the same position).
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler
from repro.ioa import RandomScheduler

from tests.consensus.conftest import (
    COORDINATOR_PROTOCOLS,
    consensus_internals,
    leader_crash_plan,
    members_of,
    run_consensus_workload,
)

SEEDS = (0, 1, 2, 3, 4)


def run_crashy(protocol: str, seed: int):
    return run_consensus_workload(
        protocol,
        consensus_factor=3,
        plan=leader_crash_plan(at=10 + (seed % 7), seed=seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
    )


def assert_election_safety(handle):
    leaders_per_term = {}
    for info in consensus_internals(handle):
        if info["consensus"] == "became-leader":
            leaders_per_term.setdefault(info["term"], set()).add(info["member"])
    for term, leaders in leaders_per_term.items():
        assert len(leaders) <= 1, f"term {term} elected {sorted(leaders)}"


def assert_log_matching(handle):
    members = members_of(handle)
    for a in members:
        for b in members:
            if a.name >= b.name:
                continue
            # Same (index, term) => identical entry, and identical prefix.
            upto = min(a.log.last_index, b.log.last_index)
            for index in range(upto, 0, -1):
                if a.log.term_at(index) == b.log.term_at(index):
                    assert a.log.entries[:index] == b.log.entries[:index], (
                        f"{a.name} and {b.name} diverge below matching index {index}"
                    )
                    break
            # Committed prefixes agree outright.
            committed = min(a.log.commit_index, b.log.commit_index)
            assert a.log.entries[:committed] == b.log.entries[:committed]


def assert_state_machine_safety(handle):
    members = members_of(handle)
    applied = {
        m.name: [e.request_id for e in m.log.entries[: m.log.last_applied] if not e.is_noop()]
        for m in members
    }
    names = sorted(applied)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            shorter, longer = sorted((applied[a], applied[b]), key=len)
            assert longer[: len(shorter)] == shorter, (
                f"{a} and {b} applied divergent sequences"
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_safety_invariants_across_seeds(protocol, seed):
    handle = run_crashy(protocol, seed)
    # Liveness first: the crash must have been absorbed (majority alive).
    assert not handle.simulation.incomplete_transactions(), (protocol, seed)
    assert_election_safety(handle)
    assert_log_matching(handle)
    assert_state_machine_safety(handle)
    # And the executions stay strictly serializable through the failover.
    assert handle.serializability().ok, (protocol, seed)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_applied_timestamps_stay_monotonic_across_failover(seed):
    """OCC's replicated oracle must never reissue a timestamp (state-machine
    safety made protocol-visible): all granted timestamps are distinct."""
    handle = run_crashy("occ-double-collect", seed)
    stamps = [
        r.annotations["timestamp"]
        for r in handle.simulation.transaction_records()
        if "timestamp" in r.annotations
    ]
    assert len(stamps) == len(set(stamps))
