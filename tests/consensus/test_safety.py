"""Consensus safety invariants as trace/state assertions across seeds.

The three Raft safety properties — election safety, log matching and
state-machine safety — now live in the shared checker ``tests/invariants.py``
(applied automatically to every run in this suite by the autouse fixture);
this module keeps the *explicit* cross-seed executions that exercise them
hardest: leader crash + randomized chaos schedules, several seeds.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler
from repro.ioa import RandomScheduler

from tests.consensus.conftest import (
    COORDINATOR_PROTOCOLS,
    leader_crash_plan,
    run_consensus_workload,
)
from tests.invariants import (
    check_election_safety,
    check_log_matching,
    check_state_machine_safety,
)

SEEDS = (0, 1, 2, 3, 4)

pytestmark = pytest.mark.invariants


def run_crashy(protocol: str, seed: int):
    return run_consensus_workload(
        protocol,
        consensus_factor=3,
        plan=leader_crash_plan(at=10 + (seed % 7), seed=seed),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_safety_invariants_across_seeds(protocol, seed):
    handle = run_crashy(protocol, seed)
    # Liveness first: the crash must have been absorbed (majority alive).
    assert not handle.simulation.incomplete_transactions(), (protocol, seed)
    check_election_safety(handle)
    check_log_matching(handle)
    check_state_machine_safety(handle)
    # And the executions stay strictly serializable through the failover.
    assert handle.serializability().ok, (protocol, seed)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_applied_timestamps_stay_monotonic_across_failover(seed):
    """OCC's replicated oracle must never reissue a timestamp (state-machine
    safety made protocol-visible): all granted timestamps are distinct."""
    handle = run_crashy("occ-double-collect", seed)
    stamps = [
        r.annotations["timestamp"]
        for r in handle.simulation.transaction_records()
        if "timestamp" in r.annotations
    ]
    assert len(stamps) == len(set(stamps))
