"""Kernel timeout mechanics: the virtual-time timer facility elections ride on."""

from __future__ import annotations

from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import CrashEvent
from repro.ioa import Automaton, FIFOScheduler, ServerAutomaton, Simulation


class TimerBox(ServerAutomaton):
    """Arms one timer at start; records when it fires."""

    def __init__(self, name: str, delay: int, rearm: int = 0) -> None:
        super().__init__(name)
        self.delay = delay
        self.rearm = rearm
        self.fired = []

    def on_start(self, ctx) -> None:
        ctx.set_timeout(self.delay, label="tick")

    def on_timeout(self, info, ctx) -> None:
        self.fired.append((ctx.vtime, info["label"]))
        if self.rearm > 0:
            self.rearm -= 1
            ctx.set_timeout(self.delay, label="tick")


def test_idle_system_fast_forwards_to_the_timer():
    sim = Simulation(scheduler=FIFOScheduler())
    box = sim.add_automaton(TimerBox("t1", delay=50))
    sim.run()
    assert [label for _, label in box.fired] == ["tick"]
    # The idle fast-forward jumped the virtual clock to the timer's stamp.
    assert box.fired[0][0] >= 50


def test_timers_fire_in_ready_order_and_chain():
    sim = Simulation(scheduler=FIFOScheduler())
    fast = sim.add_automaton(TimerBox("fast", delay=10, rearm=2))
    slow = sim.add_automaton(TimerBox("slow", delay=45))
    sim.run()
    assert len(fast.fired) == 3 and len(slow.fired) == 1
    assert fast.fired[0][0] <= slow.fired[0][0]
    # Each re-arm lands a full delay later on the virtual clock.
    assert fast.fired[1][0] >= fast.fired[0][0] + 10


def test_timeout_firing_is_recorded_as_internal_action():
    sim = Simulation(scheduler=FIFOScheduler())
    sim.add_automaton(TimerBox("t1", delay=5))
    sim.run()
    infos = [dict(a.info) for a in sim.trace if a.info and dict(a.info).get("timeout")]
    assert infos and infos[0]["label"] == "tick"


def test_timers_never_fire_early_under_fifo():
    """A busy run may not deliver a timer before its virtual ready time."""
    sim = Simulation(scheduler=FIFOScheduler())
    box = sim.add_automaton(TimerBox("t1", delay=30))

    class Chatter(Automaton):
        def on_start(self, ctx):
            ctx.set_timeout(1, label="kick")

        def on_timeout(self, info, ctx):
            if len(sim.trace) < 40:
                ctx.set_timeout(1, label="kick")

    sim.add_automaton(Chatter("noise"))
    sim.run()
    assert box.fired and box.fired[0][0] >= 30


def test_crashed_owner_timer_is_deferred_to_recovery():
    plan = FaultPlan(name="crash", crashes=(CrashEvent(server="t1", at=0, recover=100),))
    sim = Simulation(scheduler=FIFOScheduler(), fault_plane=FaultInjector(plan, seed=0))
    box = sim.add_automaton(TimerBox("t1", delay=10))
    sim.run()
    assert box.fired and box.fired[0][0] >= 100  # fired only after recovery


def test_fail_stopped_owner_timer_dies_with_it():
    plan = FaultPlan(name="stop", crashes=(CrashEvent(server="t1", at=0, recover=None),))
    sim = Simulation(scheduler=FIFOScheduler(), fault_plane=FaultInjector(plan, seed=0))
    box = sim.add_automaton(TimerBox("t1", delay=10))
    sim.run()
    assert box.fired == []


def test_timer_determinism():
    def signature():
        sim = Simulation(scheduler=FIFOScheduler())
        sim.add_automaton(TimerBox("a", delay=7, rearm=3))
        sim.add_automaton(TimerBox("b", delay=11, rearm=2))
        sim.run()
        return sim.trace.signature()

    assert signature() == signature()
