"""ConsensusMetrics collection and the failover sweep's machine-readable rows."""

from __future__ import annotations

from repro.analysis import (
    ExperimentConfig,
    WorkloadSpec,
    consensus_grid_rows,
    run_experiment,
    sweep_consensus_factor,
)
from repro.faults import coordinator_failover


def run_one(consensus_factor: int, faults=None):
    return run_experiment(
        ExperimentConfig(
            protocol="algorithm-b",
            num_readers=2,
            num_writers=2,
            num_objects=2,
            workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=2, seed=11),
            scheduler="chaos",
            seed=11,
            faults=faults,
            consensus_factor=consensus_factor,
        )
    )


def test_consensus_metrics_absent_at_cf1():
    assert run_one(1).metrics.consensus is None


def test_consensus_metrics_fault_free():
    metrics = run_one(3).metrics.consensus
    assert metrics is not None
    assert metrics.members == 3
    assert metrics.elections == 0 and metrics.leaders_elected == 0
    assert metrics.max_term == 1
    # Every coordinator request was applied exactly once, with a measured
    # commit latency.
    assert metrics.entries_applied > 0
    assert metrics.commit_latency.count == metrics.entries_applied
    assert metrics.commit_latency.mean > 0
    assert "commit_latency_mean" in metrics.as_dict()


def test_consensus_metrics_under_failover():
    metrics = run_one(3, faults=coordinator_failover(leader="coor", at=14, seed=11)).metrics.consensus
    assert metrics.leaders_elected >= 1
    assert metrics.elections >= metrics.leaders_elected
    assert metrics.max_term >= 2
    assert metrics.leader_elected_at  # vtimes recorded for window analysis


def test_sweep_consensus_factor_rows_tell_the_story():
    grid = sweep_consensus_factor(
        protocols=("algorithm-b",),
        factors=(1, 3),
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=2, seed=11),
    )
    rows = consensus_grid_rows(grid)
    cells = {(r["consensus_factor"], r["scenario"]): r for r in rows}
    assert set(cells) == {(1, "none"), (1, "crash-leader"), (3, "none"), (3, "crash-leader")}

    # Factor 1: the leader crash is the seed's single point of failure.
    assert cells[(1, "crash-leader")]["availability"] < 1.0

    # Factor 3: full availability through the failover, verdict unchanged,
    # and the election counters witness the re-election.
    crashed, baseline = cells[(3, "crash-leader")], cells[(3, "none")]
    assert crashed["availability"] == 1.0
    assert crashed["snow"] == baseline["snow"]
    assert crashed["consistent"] is True
    assert crashed["leaders_elected"] >= 1 and crashed["max_term"] >= 2
    assert baseline["elections"] == 0
