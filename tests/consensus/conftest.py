"""Shared helpers for the consensus-layer tests.

``run_consensus_workload`` mirrors ``tests/replication/conftest.py`` — the
same fixed explicit-id workload — but threads the consensus knobs through
``Protocol.build`` and defaults to the chaos scheduler (leader-crash plans
need the virtual clock honoured).
"""

from __future__ import annotations

from repro.faults import ChaosScheduler, FaultInjector, coordinator_failover
from repro.ioa import FIFOScheduler

from tests.replication.conftest import run_fixed_workload

COORDINATOR_PROTOCOLS = ("algorithm-b", "algorithm-c", "occ-double-collect")


def run_consensus_workload(
    protocol_name: str,
    consensus_factor: int = 3,
    plan=None,
    scheduler=None,
    seed: int = 3,
    election_timeout=None,
    run_to_completion: bool = False,
):
    """Build, submit the fixed explicit-id workload, run; returns the handle."""
    return run_fixed_workload(
        protocol_name,
        scheduler=scheduler or ChaosScheduler(base=FIFOScheduler()),
        seed=seed,
        consensus_factor=consensus_factor,
        election_timeout=election_timeout,
        plan=plan,
        run_to_completion=run_to_completion,
    )


def leader_crash_plan(at: int = 12, seed: int = 3):
    return coordinator_failover(leader="coor", at=at, seed=seed)


def consensus_internals(handle):
    """All consensus-tagged internal actions of a finished run, as dicts."""
    return [
        dict(action.info)
        for action in handle.trace()
        if action.info and "consensus" in dict(action.info)
    ]


def members_of(handle):
    """The ReplicatedCoordinator automata of a built system."""
    return [
        handle.simulation.automaton(name)
        for name in handle.simulation.topology.consensus_group()
    ]
