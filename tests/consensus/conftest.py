"""Shared helpers for the consensus-layer tests.

``run_consensus_workload`` mirrors ``tests/replication/conftest.py`` — the
same fixed explicit-id workload — but threads the consensus knobs through
``Protocol.build`` and defaults to the chaos scheduler (leader-crash plans
need the virtual clock honoured).

Every helper-produced handle is registered with the shared invariant checker
(``tests/invariants.py``), and the autouse ``invariant_autocheck`` fixture
re-checks election safety, log matching, state-machine safety and the
reconfiguration invariants at the end of each test in this suite.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, coordinator_failover
from repro.ioa import FIFOScheduler

from tests import invariants
from tests.invariants import consensus_internals  # noqa: F401  (re-exported)
from tests.replication.conftest import run_fixed_workload

COORDINATOR_PROTOCOLS = ("algorithm-b", "algorithm-c", "occ-double-collect")


@pytest.fixture(autouse=True)
def invariant_autocheck():
    """Apply the shared safety-invariant checker to every run of this suite."""
    invariants.reset()
    yield
    invariants.check_registered()


def run_consensus_workload(
    protocol_name: str,
    consensus_factor: int = 3,
    plan=None,
    scheduler=None,
    seed: int = 3,
    election_timeout=None,
    reconfig=None,
    persistence=None,
    leases=None,
    run_to_completion: bool = False,
):
    """Build, submit the fixed explicit-id workload, run; returns the handle."""
    return run_fixed_workload(
        protocol_name,
        scheduler=scheduler or ChaosScheduler(base=FIFOScheduler()),
        seed=seed,
        consensus_factor=consensus_factor,
        election_timeout=election_timeout,
        plan=plan,
        reconfig=reconfig,
        persistence=persistence,
        leases=leases,
        run_to_completion=run_to_completion,
    )


def leader_crash_plan(at: int = 12, seed: int = 3):
    return coordinator_failover(leader="coor", at=at, seed=seed)


def members_of(handle):
    """The ReplicatedCoordinator automata of a built system."""
    return invariants.consensus_members(handle)
