"""Unit tests of the consensus data structures (log + election state)."""

from __future__ import annotations

import pytest

from repro.consensus import ConsensusLog, LeaderElection, LogEntry
from repro.ioa.errors import SimulationError


def entry(term: int, rid: str) -> LogEntry:
    return LogEntry(term=term, request_id=rid, msg_type="update-coor", payload=(), client="w1")


class TestConsensusLog:
    def test_append_and_indices(self):
        log = ConsensusLog()
        assert (log.last_index, log.last_term) == (0, 0)
        assert log.append(entry(1, "a")) == 1
        assert log.append(entry(1, "b")) == 2
        assert (log.last_index, log.last_term) == (2, 1)
        assert log.term_at(0) == 0 and log.term_at(2) == 1
        assert log.contains_request("a") and not log.contains_request("zz")

    def test_matches(self):
        log = ConsensusLog()
        log.append(entry(1, "a"))
        assert log.matches(0, 0)
        assert log.matches(1, 1)
        assert not log.matches(1, 2)
        assert not log.matches(5, 1)

    def test_merge_is_idempotent_and_truncates_conflicts(self):
        log = ConsensusLog()
        log.append(entry(1, "a"))
        log.append(entry(1, "b"))
        # Idempotent redelivery: same entries, nothing changes.
        log.merge(0, (entry(1, "a"), entry(1, "b")))
        assert [e.request_id for e in log.entries] == ["a", "b"]
        # Conflict: a term-2 entry at index 2 truncates the old suffix.
        log.merge(1, (entry(2, "c"),))
        assert [e.request_id for e in log.entries] == ["a", "c"]
        assert log.last_term == 2

    def test_merge_refuses_to_truncate_committed(self):
        log = ConsensusLog()
        log.append(entry(1, "a"))
        log.advance_commit(1)
        with pytest.raises(SimulationError, match="election safety"):
            log.merge(0, (entry(2, "b"),))

    def test_commit_and_apply_cursors(self):
        log = ConsensusLog()
        for i, rid in enumerate(("a", "b", "c")):
            log.append(entry(1, rid))
        assert log.advance_commit(2) == 2
        assert log.advance_commit(1) == 2  # never regresses
        assert [rid for _, e in log.take_unapplied() for rid in [e.request_id]] == ["a", "b"]
        assert log.take_unapplied() == ()  # exactly once
        assert log.advance_commit(99) == 3  # clamped to log end
        assert [e.request_id for _, e in log.take_unapplied()] == ["c"]

    def test_up_to_date_voting_restriction(self):
        log = ConsensusLog()
        log.append(entry(1, "a"))
        log.append(entry(2, "b"))
        assert log.up_to_date(2, 2)  # identical
        assert log.up_to_date(5, 2)  # longer, same term
        assert log.up_to_date(1, 3)  # higher last term wins
        assert not log.up_to_date(1, 2)  # shorter, same term
        assert not log.up_to_date(9, 1)  # lower last term loses


class TestLeaderElection:
    def make(self, member="coor.2", index=1):
        return LeaderElection(
            member=member, index=index, group_size=3, initial_leader="coor", seed=0
        )

    def test_bootstrap_roles(self):
        leader = LeaderElection("coor", 0, 3, initial_leader="coor", seed=0)
        follower = self.make()
        assert leader.is_leader and follower.is_follower
        assert follower.voted_for == "coor"  # term-1 votes are spoken for

    def test_candidacy_and_majority(self):
        e = self.make()
        term = e.start_candidacy()
        assert term == 2 and e.is_candidate and e.voted_for == e.member
        assert not e.record_vote(e.member)  # self-vote alone is 1 < 2
        assert e.record_vote("coor.3")  # majority of 3

    def test_step_down_resets_vote_only_on_higher_term(self):
        e = self.make()
        e.start_candidacy()
        e.step_down(5)
        assert e.is_follower and e.term == 5 and e.voted_for is None
        e.grant("coor.3")
        e.step_down(5)  # same term: role change only
        assert e.voted_for == "coor.3"

    def test_may_grant_once_per_term(self):
        e = self.make()
        e.step_down(2)
        assert e.may_grant("coor.3", 2)
        e.grant("coor.3")
        assert e.may_grant("coor.3", 2)  # re-grant to the same candidate ok
        assert not e.may_grant("coor", 2)  # but not to another
        assert not e.may_grant("coor.3", 1)  # stale term never

    def test_timeouts_are_seeded_and_member_distinct(self):
        a1 = self.make(index=1)
        a2 = self.make(index=1)
        b = self.make(member="coor.3", index=2)
        series_a1 = [a1.next_timeout() for _ in range(8)]
        series_a2 = [a2.next_timeout() for _ in range(8)]
        series_b = [b.next_timeout() for _ in range(8)]
        assert series_a1 == series_a2  # deterministic per (seed, index)
        assert series_a1 != series_b  # but distinct across members
        low, high = a1.timeout_range
        assert all(low <= t <= high for t in series_a1 + series_b)
