"""Unit tests for keys, versions and the multi-version store."""

from __future__ import annotations

import pytest

from repro.txn.objects import (
    Key,
    Version,
    VersionStore,
    object_for_server,
    object_names,
    server_for_object,
)


class TestKey:
    def test_initial_key(self):
        key = Key.initial()
        assert key.is_initial()
        assert key.z == 0

    def test_non_initial_key(self):
        assert not Key(3, "w1").is_initial()

    def test_ordering_is_lexicographic(self):
        assert Key(1, "w1") < Key(2, "w1")
        assert Key(1, "w1") < Key(1, "w2")

    def test_keys_are_hashable_and_equal_by_value(self):
        assert Key(1, "w1") == Key(1, "w1")
        assert len({Key(1, "w1"), Key(1, "w1"), Key(2, "w1")}) == 2

    def test_describe(self):
        assert Key(3, "w2").describe() == "(3,w2)"


class TestVersionStore:
    def test_initial_version_present(self):
        store = VersionStore("ox", initial_value=41)
        assert len(store) == 1
        assert store.initial().value == 41
        assert store.latest().value == 41

    def test_put_and_get(self):
        store = VersionStore("ox")
        key = Key(1, "w1")
        store.put(key, "hello")
        assert store.get(key).value == "hello"
        assert key in store

    def test_get_missing_returns_none(self):
        store = VersionStore("ox")
        assert store.get(Key(9, "w9")) is None

    def test_latest_follows_insertion_order(self):
        store = VersionStore("ox")
        store.put(Key(1, "w1"), "a")
        store.put(Key(1, "w2"), "b")
        assert store.latest().value == "b"

    def test_overwrite_same_key_keeps_single_entry(self):
        store = VersionStore("ox")
        key = Key(1, "w1")
        store.put(key, "a")
        store.put(key, "b")
        assert len(store) == 2  # initial + one key
        assert store.get(key).value == "b"

    def test_all_versions_in_order(self):
        store = VersionStore("ox", initial_value=0)
        store.put(Key(1, "w1"), "a")
        store.put(Key(2, "w1"), "b")
        values = [v.value for v in store.all_versions()]
        assert values == [0, "a", "b"]

    def test_keys_listing(self):
        store = VersionStore("ox")
        store.put(Key(1, "w1"), "a")
        assert store.keys() == (Key.initial(), Key(1, "w1"))

    def test_version_describe(self):
        version = Version("ox", 5, Key(1, "w1"))
        assert "ox" in version.describe()


class TestNaming:
    def test_two_objects_are_x_and_y(self):
        assert object_names(2) == ("ox", "oy")

    def test_many_objects_are_numbered(self):
        assert object_names(3) == ("o1", "o2", "o3")
        assert object_names(1) == ("o1",)

    def test_server_for_object_round_trip(self):
        for obj in ("ox", "oy", "o1", "o7"):
            assert object_for_server(server_for_object(obj)) == obj

    def test_server_naming(self):
        assert server_for_object("ox") == "sx"
        assert server_for_object("o3") == "s3"
