"""Unit tests for the sequential data type OT (Section 7.1)."""

from __future__ import annotations

import pytest

from repro.txn.datatype import (
    OTState,
    apply_transaction,
    consistent_with_serial_order,
    run_serial,
    serial_read_expectation,
)
from repro.txn.transactions import ReadResult, WRITE_OK, read, write


class TestOTState:
    def test_initial_state(self):
        state = OTState.initial(("ox", "oy"), initial_value=0)
        assert state.as_dict == {"ox": 0, "oy": 0}

    def test_with_updates(self):
        state = OTState.initial(("ox", "oy"))
        updated = state.with_updates({"ox": 5})
        assert updated.value_for("ox") == 5
        assert updated.value_for("oy") == 0
        # original untouched (immutability)
        assert state.value_for("ox") == 0

    def test_with_updates_rejects_unknown_object(self):
        state = OTState.initial(("ox",))
        with pytest.raises(KeyError):
            state.with_updates({"oz": 1})

    def test_from_mapping(self):
        state = OTState.from_mapping({"oy": 2, "ox": 1})
        assert state.objects() == ("ox", "oy")

    def test_states_are_hashable(self):
        a = OTState.initial(("ox",))
        b = OTState.initial(("ox",))
        assert a == b
        assert len({a, b}) == 1


class TestApplyTransaction:
    def test_read_returns_current_values_and_keeps_state(self):
        state = OTState.from_mapping({"ox": 1, "oy": 2})
        response, next_state = apply_transaction(state, read("ox", "oy"))
        assert response.as_dict == {"ox": 1, "oy": 2}
        assert next_state == state

    def test_read_of_subset(self):
        state = OTState.from_mapping({"ox": 1, "oy": 2})
        response, _ = apply_transaction(state, read("oy"))
        assert response.as_dict == {"oy": 2}

    def test_write_updates_state_and_returns_ok(self):
        state = OTState.initial(("ox", "oy"))
        response, next_state = apply_transaction(state, write(ox=7))
        assert response == WRITE_OK
        assert next_state.as_dict == {"ox": 7, "oy": 0}

    def test_read_unknown_object_rejected(self):
        state = OTState.initial(("ox",))
        with pytest.raises(KeyError):
            apply_transaction(state, read("oz"))

    def test_non_transaction_rejected(self):
        with pytest.raises(TypeError):
            apply_transaction(OTState.initial(("ox",)), "nope")


class TestRunSerial:
    def test_serial_run_produces_expected_responses(self):
        w1 = write(ox=1, oy=1)
        r1 = read("ox", "oy")
        w2 = write(ox=2)
        r2 = read("ox", "oy")
        responses, final_state = run_serial([w1, r1, w2, r2], objects=("ox", "oy"))
        assert responses[0] == WRITE_OK
        assert responses[1].as_dict == {"ox": 1, "oy": 1}
        assert responses[3].as_dict == {"ox": 2, "oy": 1}
        assert final_state.as_dict == {"ox": 2, "oy": 1}

    def test_empty_serial_run(self):
        responses, state = run_serial([], objects=("ox",), initial_value=9)
        assert responses == ()
        assert state.value_for("ox") == 9


class TestSerialReadExpectation:
    def test_expectation_uses_prefix_only(self):
        w1 = write(ox=1)
        r = read("ox")
        w2 = write(ox=2)
        expectation = serial_read_expectation([w1, r, w2], r, objects=("ox",))
        assert expectation.as_dict == {"ox": 1}

    def test_expectation_requires_read_in_order(self):
        r = read("ox")
        with pytest.raises(ValueError):
            serial_read_expectation([write(ox=1)], r, objects=("ox",))


class TestConsistencyCheck:
    def test_consistent_order_accepted(self):
        w = write(ox=1, oy=1, txn_id="W1")
        r = read("ox", "oy", txn_id="R1")
        observed = {"R1": ReadResult.from_mapping({"ox": 1, "oy": 1})}
        assert consistent_with_serial_order([w, r], observed, objects=("ox", "oy"))

    def test_inconsistent_order_rejected(self):
        w = write(ox=1, oy=1, txn_id="W1")
        r = read("ox", "oy", txn_id="R1")
        observed = {"R1": ReadResult.from_mapping({"ox": 1, "oy": 0})}
        assert not consistent_with_serial_order([w, r], observed, objects=("ox", "oy"))
        assert not consistent_with_serial_order([r, w], observed, objects=("ox", "oy"))

    def test_reads_without_observations_do_not_constrain(self):
        w = write(ox=1, txn_id="W1")
        r = read("ox", txn_id="R1")
        assert consistent_with_serial_order([r, w], {}, objects=("ox",))

    def test_observed_mapping_form(self):
        w = write(ox=1, txn_id="W1")
        r = read("ox", txn_id="R1")
        assert consistent_with_serial_order([w, r], {"R1": {"ox": 1}}, objects=("ox",))
