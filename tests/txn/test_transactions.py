"""Unit tests for READ/WRITE transaction value types."""

from __future__ import annotations

import pytest

from repro.txn.transactions import (
    ReadResult,
    ReadTransaction,
    WRITE_OK,
    WriteTransaction,
    is_read_transaction,
    is_write_transaction,
    read,
    write,
    write_pairs,
)


class TestReadTransaction:
    def test_read_constructor(self):
        txn = read("ox", "oy")
        assert txn.objects == ("ox", "oy")
        assert txn.is_read()
        assert not txn.is_write()
        assert txn.kind == "read"

    def test_read_requires_objects(self):
        with pytest.raises(ValueError):
            ReadTransaction(objects=())

    def test_read_rejects_duplicates(self):
        with pytest.raises(ValueError):
            read("ox", "ox")

    def test_txn_ids_are_unique_when_auto_assigned(self):
        assert read("ox").txn_id != read("ox").txn_id

    def test_explicit_txn_id_preserved(self):
        assert read("ox", txn_id="R-explicit").txn_id == "R-explicit"

    def test_describe_mentions_objects(self):
        description = read("ox", "oy", txn_id="R9").describe()
        assert "R9" in description and "ox" in description


class TestWriteTransaction:
    def test_write_constructor(self):
        txn = write(ox=1, oy=2)
        assert txn.objects == ("ox", "oy")
        assert txn.value_for("oy") == 2
        assert txn.is_write()
        assert txn.kind == "write"

    def test_write_pairs_constructor(self):
        txn = write_pairs((("ox", 1), ("oy", 2)), txn_id="W7")
        assert txn.txn_id == "W7"
        assert txn.values == {"ox": 1, "oy": 2}

    def test_write_requires_updates(self):
        with pytest.raises(ValueError):
            WriteTransaction(updates=())

    def test_write_rejects_duplicate_objects(self):
        with pytest.raises(ValueError):
            write_pairs((("ox", 1), ("ox", 2)))

    def test_write_ok_constant(self):
        assert WRITE_OK == "ok"

    def test_describe_mentions_values(self):
        assert "ox=1" in write(ox=1, txn_id="W1").describe()


class TestReadResult:
    def test_from_mapping_and_back(self):
        result = ReadResult.from_mapping({"oy": 2, "ox": 1})
        assert result.as_dict == {"ox": 1, "oy": 2}
        assert result.objects() == ("ox", "oy")

    def test_value_for(self):
        result = ReadResult.from_mapping({"ox": 1})
        assert result.value_for("ox") == 1
        with pytest.raises(KeyError):
            result.value_for("oz")

    def test_results_are_value_equal(self):
        assert ReadResult.from_mapping({"ox": 1}) == ReadResult.from_mapping({"ox": 1})

    def test_describe(self):
        assert "ox=1" in ReadResult.from_mapping({"ox": 1}).describe()


class TestPredicates:
    def test_is_read_transaction(self):
        assert is_read_transaction(read("ox"))
        assert not is_read_transaction(write(ox=1))

    def test_is_write_transaction(self):
        assert is_write_transaction(write(ox=1))
        assert not is_write_transaction(read("ox"))

    def test_predicates_reject_other_values(self):
        assert not is_read_transaction("not a txn")
        assert not is_write_transaction(42)
