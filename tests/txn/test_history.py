"""Unit tests for transaction histories and real-time precedence."""

from __future__ import annotations

import pytest

from repro.txn.history import History, HistoryEntry
from repro.txn.transactions import ReadResult, WRITE_OK, read, write


def entry(txn, client, invoke, respond, result=None):
    return HistoryEntry(txn=txn, client=client, invoke_index=invoke, respond_index=respond, result=result)


def simple_history():
    w1 = write(ox=1, oy=1, txn_id="W1")
    r1 = read("ox", "oy", txn_id="R1")
    w2 = write(ox=2, txn_id="W2")
    entries = [
        entry(w1, "w", 0, 3, WRITE_OK),
        entry(r1, "r", 4, 7, ReadResult.from_mapping({"ox": 1, "oy": 1})),
        entry(w2, "w", 5, 9, WRITE_OK),
    ]
    return History(entries, objects=("ox", "oy"), initial_value=0)


class TestHistoryEntry:
    def test_precedes_when_respond_before_invoke(self):
        first = entry(write(ox=1, txn_id="Wa"), "w", 0, 1)
        second = entry(read("ox", txn_id="Ra"), "r", 2, 3)
        assert first.precedes(second)
        assert not second.precedes(first)

    def test_overlap_detection(self):
        first = entry(write(ox=1, txn_id="Wb"), "w", 0, 5)
        second = entry(read("ox", txn_id="Rb"), "r", 2, 3)
        assert first.overlaps(second)
        assert second.overlaps(first)

    def test_incomplete_entry_never_precedes(self):
        first = entry(write(ox=1, txn_id="Wc"), "w", 0, None)
        second = entry(read("ox", txn_id="Rc"), "r", 5, 6)
        assert not first.precedes(second)
        assert not first.complete

    def test_describe_contains_txn_id(self):
        e = entry(read("ox", txn_id="Rd"), "r", 0, 1, ReadResult.from_mapping({"ox": 0}))
        assert "Rd" in e.describe()


class TestHistory:
    def test_duplicate_ids_rejected(self):
        e = entry(read("ox", txn_id="R-dup"), "r", 0, 1)
        with pytest.raises(ValueError):
            History([e, e], objects=("ox",))

    def test_reads_and_writes_partition(self):
        history = simple_history()
        assert {e.txn_id for e in history.reads()} == {"R1"}
        assert {e.txn_id for e in history.writes()} == {"W1", "W2"}

    def test_entry_lookup(self):
        history = simple_history()
        assert history.entry("R1").client == "r"
        with pytest.raises(KeyError):
            history.entry("nope")

    def test_results_map(self):
        history = simple_history()
        results = history.results()
        assert results["W1"] == WRITE_OK
        assert results["R1"].as_dict == {"ox": 1, "oy": 1}

    def test_precedence_pairs(self):
        history = simple_history()
        pairs = set(history.precedence_pairs())
        assert ("W1", "R1") in pairs
        assert ("W1", "W2") in pairs
        assert ("R1", "W2") not in pairs  # they overlap

    def test_concurrent_pairs(self):
        history = simple_history()
        assert ("R1", "W2") in history.concurrent_pairs() or ("W2", "R1") in history.concurrent_pairs()

    def test_max_concurrent_writes(self):
        history = simple_history()
        read_entry = history.entry("R1")
        assert history.max_concurrent_writes(read_entry) == 1

    def test_restricted_to_complete(self):
        w = entry(write(ox=1, txn_id="W-open"), "w", 0, None)
        r = entry(read("ox", txn_id="R-done"), "r", 1, 2, ReadResult.from_mapping({"ox": 0}))
        history = History([w, r], objects=("ox",))
        restricted = history.restricted_to_complete()
        assert len(restricted) == 1
        assert len(history.incomplete_entries()) == 1

    def test_from_results_constructor(self):
        w = write(ox=1, txn_id="W-res")
        history = History.from_results([(w, "w", 0, 1, WRITE_OK)], objects=("ox",))
        assert history.entry("W-res").complete

    def test_describe_lists_transactions(self):
        text = simple_history().describe()
        assert "W1" in text and "R1" in text


class TestHistoryFromSimulation:
    def test_round_trip_through_simulation(self):
        from tests.conftest import build_system, run_simple_workload

        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        read_ids, write_ids = run_simple_workload(handle, rounds=1)
        history = handle.history()
        assert len(history) == len(read_ids) + len(write_ids)
        assert set(history.objects) == set(handle.objects)
        assert all(e.complete for e in history)

    def test_objects_inferred_when_not_given(self):
        from tests.conftest import build_system

        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        handle.submit_write({"ox": 1}, writer="w1")
        handle.run_to_completion()
        from repro.txn.history import History as H

        history = H.from_simulation(handle.simulation)
        assert history.objects == ("ox",)
