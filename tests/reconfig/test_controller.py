"""The rebalancing controller: observe → derive → submit, no hand-authored plans.

End-to-end: a fail-stopped replica is detected by the probe loop's relative
(sibling-witness) failure detector and replaced through a derived
``ReconfigRequest`` — the group returns to full strength with availability
1.0 and zero epoch retries.  Also covered: the fault-free no-op contract,
the grow-on-latency rule, the protected-coordinator guard at
``consensus_factor=1`` (both controller- and driver-side), policy
validation, and the metrics block.
"""

from __future__ import annotations

import pytest

from repro.consensus import ADMIN_NAME, ControllerPolicy
from repro.faults import ChaosScheduler, FaultInjector, auto_heal
from repro.faults.plan import CrashEvent, FaultPlan, UniformLatency
from repro.ioa import FIFOScheduler
from repro.ioa.actions import Message
from repro.protocols import get_protocol

from tests import invariants
from tests.reconfig.conftest import final_read_values

pytestmark = pytest.mark.invariants

#: every family the self-healing grid covers (s2pl blocks on dead replicas
#: by design — giving up N is its defining property)
HEALABLE = (
    "algorithm-a",
    "algorithm-b",
    "algorithm-c",
    "occ-double-collect",
    "eiger",
    "naive-snow",
)


def run_controlled(
    protocol_name,
    plan=None,
    policy=None,
    rounds=4,
    seed=3,
    replication_factor=3,
    quorum="majority",
    obs=None,
):
    """Build with the controller installed, run a chained workload to idle."""
    protocol = get_protocol(protocol_name)
    num_readers = 1 if not protocol.supports_multiple_readers else 2
    handle = protocol.build(
        num_readers=num_readers,
        num_writers=2,
        num_objects=2,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=seed,
        replication_factor=replication_factor,
        quorum=quorum,
        controller=policy if policy is not None else ControllerPolicy(),
        obs=obs,
        fault_plane=FaultInjector(plan, seed=seed) if plan is not None else None,
    )
    previous = None
    for index in range(1, rounds + 1):
        previous = handle.submit_write(
            {obj: f"v{index}-{obj}" for obj in handle.objects},
            writer=handle.writers[(index - 1) % len(handle.writers)],
            txn_id=f"W{index}",
            after=[previous] if previous else (),
        )
        handle.submit_read(
            handle.objects,
            reader=handle.readers[(index - 1) % len(handle.readers)],
            txn_id=f"R{index}",
            after=[previous],
        )
    handle.run()
    return invariants.register(handle)


def controller_events(handle, *kinds):
    return [
        dict(a.info)
        for a in handle.trace()
        if a.info and dict(a.info).get("controller") in kinds
    ]


@pytest.mark.parametrize("protocol", HEALABLE)
class TestAutoHeal:
    def run(self, protocol, seed=3):
        plan, policy = auto_heal("ox", 3, crash_at=8, seed=seed)
        return run_controlled(protocol, plan=plan, policy=policy, seed=seed)

    def test_detects_and_replaces_autonomously(self, protocol):
        handle = self.run(protocol)
        dead = controller_events(handle, "replica-dead")
        plans = controller_events(handle, "plan-replace")
        assert [e["replica"] for e in dead] == ["sx.3"]
        assert len(plans) == 1 and plans[0]["object"] == "ox"
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4")
        assert handle.directory.is_retired("sx.3")
        assert "sx.4" in handle.simulation.servers()

    def test_full_availability_and_no_retries(self, protocol):
        handle = self.run(protocol)
        assert not handle.simulation.incomplete_transactions()
        assert final_read_values(handle, "R4") == {
            obj: f"v4-{obj}" for obj in handle.objects
        }
        assert handle.directory.retries == []

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_across_seeds(self, protocol, seed):
        handle = self.run(protocol, seed=seed)
        assert not handle.simulation.incomplete_transactions(), (protocol, seed)
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4"), (protocol, seed)


class TestNoFalseDerivation:
    @pytest.mark.parametrize("protocol", HEALABLE)
    def test_fault_free_run_derives_nothing(self, protocol):
        handle = run_controlled(protocol)
        assert controller_events(handle, "replica-dead", "plan-replace", "plan-grow") == []
        assert handle.directory.epoch == 0
        assert not handle.simulation.incomplete_transactions()


class TestGrowOnLatency:
    def test_slow_network_grows_the_groups(self):
        plan = FaultPlan(name="slow", latency=UniformLatency(8, 16), seed=5)
        policy = ControllerPolicy(
            latency_bound=4, probe_interval=20, fail_after=2, max_ticks=24, max_actions=2
        )
        handle = run_controlled("algorithm-b", plan=plan, policy=policy, seed=5)
        grows = controller_events(handle, "plan-grow")
        assert grows, "a slow network must trigger the grow rule"
        grown_objects = {e["object"] for e in grows}
        for object_id in grown_objects:
            assert len(handle.directory.group(object_id)) > 3
        assert controller_events(handle, "replica-dead") == []

    def test_fast_network_stays_at_rf3(self):
        plan = FaultPlan(name="fastish", latency=UniformLatency(0, 2), seed=5)
        policy = ControllerPolicy(
            latency_bound=50, probe_interval=20, fail_after=2, max_ticks=24
        )
        handle = run_controlled("algorithm-b", plan=plan, policy=policy, seed=5)
        assert controller_events(handle, "plan-grow") == []
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.3")


class TestProtectedCoordinator:
    def test_dead_coordinator_is_never_replaced(self):
        """At consensus_factor=1 the designated coordinator's replica must
        not be reconfigured away by a derived change — the role does not
        migrate, and replacing the replica would strand coordinator rounds
        that could otherwise resume (e.g. after a recovery)."""
        plan = FaultPlan(
            name="dead-coordinator",
            crashes=(CrashEvent(server="sx", at=8, recover=None),),
            seed=3,
        )
        handle = run_controlled("algorithm-b", plan=plan)
        assert controller_events(handle, "plan-replace") == []
        assert "sx" in handle.directory.group("ox")
        assert not handle.directory.is_retired("sx")

    def test_driver_rejects_protected_retirement(self):
        """Defence in depth: even a direct submission retiring a protected
        name is rejected by the driver."""
        handle = run_controlled("algorithm-b")
        driver = handle.simulation.automaton(ADMIN_NAME)
        ctx = handle.simulation._contexts[ADMIN_NAME]
        before = len(driver.requests)
        driver.on_message(
            Message.make(
                "reconfig-submit",
                "reconfig-controller",
                ADMIN_NAME,
                {"kind": "replica-group", "object": "ox", "group": ("sx.2", "sx.3", "sx.4")},
            ),
            ctx,
        )
        assert len(driver.requests) == before
        rejected = [
            dict(a.info)
            for a in handle.trace()
            if a.info and dict(a.info).get("reconfig") == "rejected"
        ]
        assert rejected and rejected[-1]["protected"] == "sx"


class TestPolicyAndMetrics:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="probe_interval"):
            ControllerPolicy(probe_interval=0)
        with pytest.raises(ValueError, match="fail_after"):
            ControllerPolicy(fail_after=0)
        with pytest.raises(ValueError, match="max_ticks"):
            ControllerPolicy(max_ticks=0)

    def test_controller_requires_reconfig_support(self):
        from repro.protocols import NaiveSnowCandidate

        class FixedMembershipStub(NaiveSnowCandidate):
            name = "fixed-membership-stub-ctl"
            supports_reconfig = False

        with pytest.raises(ValueError, match="rebalancing controller"):
            FixedMembershipStub().build(
                num_readers=2, num_writers=2, num_objects=2,
                controller=ControllerPolicy(),
            )

    def test_metrics_block(self):
        from repro.analysis import ExperimentConfig, WorkloadSpec, run_experiment

        plan, policy = auto_heal("ox", 3, crash_at=8, seed=3)
        result = run_experiment(
            ExperimentConfig(
                protocol="algorithm-b",
                scheduler="chaos",
                seed=3,
                replication_factor=3,
                quorum="majority",
                workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=3),
                faults=plan,
                controller=policy,
            )
        )
        metrics = result.metrics.controller
        assert metrics is not None
        assert metrics.probes > 0 and metrics.acks > 0
        assert metrics.dead_detected == 1
        assert metrics.plans_replace == 1 and metrics.healed == 1
        assert metrics.converged
        assert metrics.time_to_heal is not None and metrics.time_to_heal > 0
        assert metrics.as_dict()["dead_detected"] == 1
        # The reconfiguration block rides along: one joint entry + commit.
        assert result.metrics.reconfig is not None
        assert result.metrics.reconfig.epochs == 2
        assert result.metrics.reconfig.unavailability_window == 0


class TestHealthCorroboration:
    """``ControllerPolicy.use_health``: the observability plane's passive
    staleness score as a corroborating detector input — default-off and
    golden-pinned, so everything here opts in explicitly."""

    def test_use_health_requires_a_health_plane(self):
        with pytest.raises(ValueError, match=r"ObservabilityPlane\(health=True\)"):
            get_protocol("algorithm-b").build(
                num_readers=2,
                num_writers=2,
                num_objects=2,
                replication_factor=3,
                quorum="majority",
                controller=ControllerPolicy(use_health=True),
            )

    def test_health_floor_validation(self):
        with pytest.raises(ValueError, match="health_floor"):
            ControllerPolicy(use_health=True, health_floor=1.5)
        assert "health<=" in ControllerPolicy(use_health=True).describe()
        assert "health<=" not in ControllerPolicy().describe()

    def test_corroborated_heal_reaches_the_same_outcome(self):
        """With the health signal corroborating the probe verdict, the dead
        replica is still detected and replaced — the signal agrees with the
        witness-based detector on a genuinely dead replica."""
        from dataclasses import replace

        from repro.obs import ObservabilityPlane

        plan, policy = auto_heal("ox", 3, crash_at=8, seed=3)
        handle = run_controlled(
            "algorithm-b",
            plan=plan,
            policy=replace(policy, use_health=True),
            obs=ObservabilityPlane(health=True),
        )
        assert [e["replica"] for e in controller_events(handle, "replica-dead")] == ["sx.3"]
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4")
        assert not handle.simulation.incomplete_transactions()

    def test_attached_health_plane_without_use_health_is_byte_identical(self):
        """The other directions of the default-off contract: a health plane
        that nobody consumes — and a consumed one — leave the controller
        run's trace byte-identical (the plane only listens)."""
        from dataclasses import replace

        from repro.obs import ObservabilityPlane

        plan, policy = auto_heal("ox", 3, crash_at=8, seed=3)
        bare = run_controlled("algorithm-b", plan=plan, policy=policy)
        watched = run_controlled(
            "algorithm-b", plan=plan, policy=policy, obs=ObservabilityPlane(health=True)
        )
        assert watched.trace().signature() == bare.trace().signature()
        consumed = run_controlled(
            "algorithm-b",
            plan=plan,
            policy=replace(policy, use_health=True),
            obs=ObservabilityPlane(health=True),
        )
        # corroboration reads health scores but never perturbs the schedule
        # when probe and health verdicts agree
        assert consumed.trace().signature() == bare.trace().signature()
