"""Seed-determinism regression: same config + seed ⇒ identical runs.

Hidden nondeterminism (iteration over unordered sets, id()-based ordering,
wall-clock leakage) poisons golden signatures and makes chaos failures
unreplayable.  One configuration per protocol family runs twice through the
full experiment harness and must produce the identical event trace and the
identical metrics record — including under a fault plan and under a
membership change, the paths this PR adds.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis import ExperimentConfig, WorkloadSpec, run_experiment
from repro.faults import lossy_network, replace_dead_replica


def run_twice(config: ExperimentConfig):
    return run_experiment(config), run_experiment(config)


def _id_normalizer(result):
    """Auto-assigned transaction ids come from a process-global counter, so
    two runs in one process get different names for the same transactions;
    normalise them to their (deterministic) submission position before
    comparing anything."""
    mapping = {
        str(t.txn_id): f"T{i}"
        for i, t in enumerate(result.metrics.transactions)
    }

    def normalise(text: str) -> str:
        for old in sorted(mapping, key=len, reverse=True):
            text = text.replace(old, mapping[old])
        return text

    return normalise


def trace_hash(result) -> str:
    normalise = _id_normalizer(result)
    signature = normalise(result.history.describe()) + normalise(
        repr([t.__dict__ for t in result.metrics.transactions])
    )
    return hashlib.sha256(signature.encode("utf-8")).hexdigest()


def metrics_record(result) -> dict:
    metrics = result.metrics
    normalise = _id_normalizer(result)
    record = {
        "total_messages": metrics.total_messages,
        "total_steps": metrics.total_steps,
        "read_rounds_max": metrics.max_read_rounds(),
        "transactions": tuple(
            (
                normalise(t.txn_id),
                t.kind,
                t.rounds,
                t.messages_sent,
                t.latency_steps,
                normalise(repr(t.annotations)),
            )
            for t in metrics.transactions
        ),
        "snow": result.property_string(),
    }
    if metrics.faults is not None:
        record["faults"] = metrics.faults.as_dict()
    if metrics.consensus is not None:
        record["consensus"] = metrics.consensus.as_dict()
    if metrics.reconfig is not None:
        record["reconfig"] = metrics.reconfig.as_dict()
    if metrics.controller is not None:
        record["controller"] = metrics.controller.as_dict()
    return record


#: one representative per protocol family: baseline read/write, C2C (A),
#: coordinator-based (B, + consensus replication), oracle-based (OCC),
#: Eiger-style rich transactions — all under the randomized chaos scheduler.
FAMILY_CONFIGS = {
    "simple-rw": ExperimentConfig(
        protocol="simple-rw", scheduler="random", seed=5,
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=5),
    ),
    "algorithm-a": ExperimentConfig(
        protocol="algorithm-a", num_readers=1, scheduler="random", seed=5,
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=5),
    ),
    "algorithm-b": ExperimentConfig(
        protocol="algorithm-b", scheduler="chaos", seed=5, consensus_factor=3,
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=5),
    ),
    "occ-double-collect": ExperimentConfig(
        protocol="occ-double-collect", scheduler="random", seed=5,
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=5),
    ),
    "eiger": ExperimentConfig(
        protocol="eiger", scheduler="chaos", seed=5, faults=lossy_network(seed=5),
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=5),
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILY_CONFIGS))
def test_same_seed_same_trace_and_metrics(family):
    first, second = run_twice(FAMILY_CONFIGS[family])
    assert trace_hash(first) == trace_hash(second), family
    assert metrics_record(first) == metrics_record(second), family


def test_reconfig_runs_are_deterministic():
    """The new reconfiguration path (timers, spawns, sync, retirement) is as
    replayable as everything else."""
    plan, reconfig = replace_dead_replica("ox", 3, seed=7)
    config = ExperimentConfig(
        protocol="algorithm-b",
        scheduler="chaos",
        seed=7,
        replication_factor=3,
        quorum="majority",
        faults=plan,
        reconfig=reconfig,
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=7),
    )
    first, second = run_twice(config)
    assert trace_hash(first) == trace_hash(second)
    assert metrics_record(first) == metrics_record(second)
    assert first.metrics.reconfig.reconfigs_completed == 1


def _reconfig_family_config(protocol: str, seed: int = 7) -> ExperimentConfig:
    plan, reconfig = replace_dead_replica("ox", 3, seed=seed)
    return ExperimentConfig(
        protocol=protocol,
        scheduler="chaos",
        seed=seed,
        replication_factor=3,
        quorum="majority",
        faults=plan,
        reconfig=reconfig,
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=seed),
    )


@pytest.mark.parametrize(
    "protocol", ("algorithm-c", "occ-double-collect", "eiger")
)
def test_ported_reconfig_runs_are_deterministic(protocol):
    """The epoch-aware rounds of the newly ported families (C's combined
    read round, OCC's quorum collects, Eiger's two retryable rounds) replay
    identically per seed — trace and metrics — through a full
    replace-dead-replica run."""
    first, second = run_twice(_reconfig_family_config(protocol))
    assert trace_hash(first) == trace_hash(second), protocol
    assert metrics_record(first) == metrics_record(second), protocol
    assert first.metrics.reconfig.reconfigs_completed == 1, protocol


def test_controller_runs_are_deterministic():
    """The control loop (probe timers, detection, derived submissions) is
    replayable too: same seed ⇒ identical trace, metrics and derived plans."""
    from repro.faults import auto_heal

    plan, policy = auto_heal("ox", 3, crash_at=8, seed=7)
    config = ExperimentConfig(
        protocol="algorithm-b",
        scheduler="chaos",
        seed=7,
        replication_factor=3,
        quorum="majority",
        faults=plan,
        controller=policy,
        workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, seed=7),
    )
    first, second = run_twice(config)
    assert trace_hash(first) == trace_hash(second)
    assert metrics_record(first) == metrics_record(second)
    assert first.metrics.controller.plans_replace == 1


def test_different_seeds_differ():
    """Sanity: the determinism checks are not vacuous — a different seed
    produces a different execution for at least one family."""
    base = FAMILY_CONFIGS["algorithm-b"]
    other = base.with_seed(6)
    first = run_experiment(base)
    second = run_experiment(other)
    assert trace_hash(first) != trace_hash(second)
