"""Universal reconfiguration: the ported protocol families under live changes.

PR 4 made algorithms A and B epoch-aware; this suite covers the port of the
*remaining* families — algorithm C's combined read-values-and-tags round,
OCC's collect/install rounds, Eiger's two-round rich reads, the naive
baselines and the strict-2PL baseline — through the same headline scenarios:
replace a dead replica (quorum families: availability 1.0, zero epoch
retries), grow a group with state transfer before commit, and the
epoch-mismatch restart paths.  The shared invariant checker is applied to
every run by the suite's autouse fixture.
"""

from __future__ import annotations

import pytest

from repro.consensus.reconfig import ReconfigPlan, set_consensus_group, set_replica_group
from repro.faults import grow_group_mid_run, replace_dead_replica

from tests.reconfig.conftest import final_read_values, run_reconfig_workload

#: the families ported in this PR whose quorum rounds absorb a dead replica
QUORUM_PORTED = ("algorithm-c", "occ-double-collect", "eiger", "naive-snow", "simple-rw")
#: the ported families whose executions are strictly serializable
SERIALIZABLE_PORTED = ("algorithm-c", "occ-double-collect")
#: every family ported in this PR (s2pl handles live changes only; a *dead*
#: replica blocks its lock rounds — giving up N is its defining property)
ALL_PORTED = QUORUM_PORTED + ("s2pl",)

pytestmark = pytest.mark.invariants


@pytest.mark.parametrize("protocol", QUORUM_PORTED)
class TestReplaceDeadReplicaPorted:
    def run(self, protocol, seed=3):
        plan, reconfig = replace_dead_replica("ox", 3, crash_at=8, reconfig_at=30, seed=seed)
        return run_reconfig_workload(
            protocol, reconfig=reconfig, plan=plan, rounds=4, seed=seed,
            run_to_completion=False,
        )

    def test_full_availability_and_final_values(self, protocol):
        handle = self.run(protocol)
        assert not handle.simulation.incomplete_transactions()
        assert final_read_values(handle, "R4") == {
            obj: f"v4-{obj}" for obj in handle.objects
        }

    def test_dead_replica_replaced_and_removed(self, protocol):
        handle = self.run(protocol)
        servers = set(handle.simulation.servers())
        assert "sx.3" not in servers
        assert "sx.4" in servers
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4")
        assert handle.directory.is_retired("sx.3")

    def test_no_epoch_retries_needed(self, protocol):
        """Replacing a *dead* replica never blocks a live round: the retained
        majority serves every quorum, so the unavailability window is 0."""
        handle = self.run(protocol)
        assert handle.directory.retries == []

    def test_verdicts_unchanged(self, protocol):
        handle = self.run(protocol)
        baseline = run_reconfig_workload(protocol, rounds=4, run_to_completion=False)
        assert not baseline.simulation.incomplete_transactions()
        assert (
            handle.snow_report().property_string()
            == baseline.snow_report().property_string()
        )
        if protocol in SERIALIZABLE_PORTED:
            assert handle.serializability().ok
        if protocol == "algorithm-c":
            # The one ported family that reports Lemma-20 tags.
            assert handle.lemma20().ok

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_across_seeds(self, protocol, seed):
        handle = self.run(protocol, seed=seed)
        assert not handle.simulation.incomplete_transactions(), (protocol, seed)
        if protocol in SERIALIZABLE_PORTED:
            assert handle.serializability().ok, (protocol, seed)


@pytest.mark.parametrize("protocol", ALL_PORTED)
class TestGrowAndShrinkPorted:
    def test_grow_rf3_to_5(self, protocol):
        _, reconfig = grow_group_mid_run("ox", 3, to_factor=5, at=20)
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=4)
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.3", "sx.4", "sx.5")
        assert {"sx.4", "sx.5"} <= set(handle.simulation.servers())
        # Both added replicas synced state before the commit.
        assert len(handle.directory.transfers) == 2
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"
        if protocol in SERIALIZABLE_PORTED or protocol == "s2pl":
            assert handle.serializability().ok

    def test_shrink_rf3_to_2(self, protocol):
        reconfig = ReconfigPlan(
            name="shrink",
            requests=(set_replica_group("ox", ("sx", "sx.2"), at=20),),
        )
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=4)
        assert handle.directory.group("ox") == ("sx", "sx.2")
        assert "sx.3" not in handle.simulation.servers()
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"


class TestEpochStamping:
    """The ported rounds stamp requests with epoch+attempt once a directory
    is installed (and only then — the golden suite pins the absence)."""

    REQUEST_TYPES = {
        "algorithm-c": ("read-vals", "write-val"),
        "occ-double-collect": ("collect", "install"),
        "eiger": ("eiger-read", "eiger-write"),
        "naive-snow": ("read-latest", "write-val"),
        "s2pl": ("lock-read", "lock-write", "commit-write"),
    }

    @pytest.mark.parametrize("protocol", sorted(REQUEST_TYPES))
    def test_requests_carry_attempt(self, protocol):
        _, reconfig = grow_group_mid_run("ox", 3, to_factor=4, at=10)
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=3)
        wanted = self.REQUEST_TYPES[protocol]
        tagged = [
            a.message
            for a in handle.trace()
            if a.message is not None
            and a.message.msg_type in wanted
            and a.message.get("attempt") is not None
        ]
        assert tagged, f"{protocol}: epoch-aware rounds must stamp requests"


class TestS2plLiveChanges:
    """The blocking baseline's reconfiguration contract: *live* membership
    changes work (retired replicas bounce lock requests with epoch-mismatch
    and the transaction restarts); a fail-stopped replica still blocks lock
    acquisition — the N property it gives up by design."""

    def test_replace_live_replica(self):
        reconfig = ReconfigPlan(
            name="live-replace",
            requests=(set_replica_group("ox", ("sx", "sx.2", "sx.4"), at=20),),
        )
        handle = run_reconfig_workload("s2pl", reconfig=reconfig, rounds=4)
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4")
        assert "sx.3" not in handle.simulation.servers()
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"
        assert handle.serializability().ok


class TestPortedConsensusReconfig:
    """The ported coordinator protocols survive a consensus-group change:
    the metadata service (C's List, OCC's timestamp oracle) moves through
    the replicated log's joint configuration mid-run."""

    @pytest.mark.parametrize("protocol", ("algorithm-c", "occ-double-collect"))
    def test_grow_consensus_group(self, protocol):
        handle = run_reconfig_workload(
            protocol,
            reconfig=ReconfigPlan(
                name="cns-grow",
                requests=(set_consensus_group(("coor", "coor.2", "coor.3", "coor.4"), at=20),),
            ),
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            rounds=4,
        )
        assert handle.simulation.topology.consensus_group() == (
            "coor", "coor.2", "coor.3", "coor.4",
        )
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"
        assert handle.serializability().ok
