"""End-to-end replica-group reconfiguration under live traffic.

The headline scenarios of the reconfiguration layer, run through real
protocol executions with the shared invariant checker applied automatically:
replace a dead replica (availability 1.0, unavailability window 0), grow a
group rf 3 → 5 (state transfer before commit), shrink a group, and the
epoch-mismatch retry path when a client catches a retired replica.
"""

from __future__ import annotations

import pytest

from repro.consensus.reconfig import ReconfigPlan, set_replica_group
from repro.faults import grow_group_mid_run, replace_dead_replica
from repro.protocols import get_protocol

from tests.reconfig.conftest import final_read_values, run_reconfig_workload

RECONFIG_PROTOCOLS = ("algorithm-a", "algorithm-b")

pytestmark = pytest.mark.invariants


@pytest.mark.parametrize("protocol", RECONFIG_PROTOCOLS)
class TestReplaceDeadReplica:
    def run(self, protocol, seed=3):
        plan, reconfig = replace_dead_replica("ox", 3, crash_at=8, reconfig_at=30, seed=seed)
        return run_reconfig_workload(
            protocol, reconfig=reconfig, plan=plan, rounds=4, seed=seed,
            run_to_completion=False,
        )

    def test_full_availability_and_final_values(self, protocol):
        handle = self.run(protocol)
        assert not handle.simulation.incomplete_transactions()
        assert final_read_values(handle, "R4") == {
            obj: f"v4-{obj}" for obj in handle.objects
        }

    def test_dead_replica_replaced_and_removed(self, protocol):
        handle = self.run(protocol)
        servers = set(handle.simulation.servers())
        assert "sx.3" not in servers
        assert "sx.4" in servers
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4")
        assert handle.directory.is_retired("sx.3")

    def test_replacement_synced_before_commit(self, protocol):
        handle = self.run(protocol)
        assert handle.directory.transfer_volume() >= 1
        replacement = handle.simulation.automaton("sx.4")
        # The new replica holds every version installed before the change.
        keys = {k.describe() if hasattr(k, "describe") else k for k in replacement.store.keys()}
        assert len(keys) >= 2

    def test_verdicts_unchanged_and_consistent(self, protocol):
        handle = self.run(protocol)
        baseline = run_reconfig_workload(protocol, rounds=4, run_to_completion=False)
        assert not baseline.simulation.incomplete_transactions()
        assert (
            handle.snow_report().property_string()
            == baseline.snow_report().property_string()
        )
        assert handle.serializability().ok
        assert handle.lemma20().ok

    def test_no_epoch_retries_needed(self, protocol):
        """Replacing a *dead* replica never blocks a live round: the retained
        majority serves every quorum, so the unavailability window is 0."""
        handle = self.run(protocol)
        assert handle.directory.retries == []

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_across_seeds(self, protocol, seed):
        handle = self.run(protocol, seed=seed)
        assert not handle.simulation.incomplete_transactions(), (protocol, seed)
        assert handle.serializability().ok, (protocol, seed)


@pytest.mark.parametrize("protocol", RECONFIG_PROTOCOLS)
class TestGrowAndShrink:
    def test_grow_rf3_to_5(self, protocol):
        _, reconfig = grow_group_mid_run("ox", 3, to_factor=5, at=20)
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=4)
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.3", "sx.4", "sx.5")
        assert {"sx.4", "sx.5"} <= set(handle.simulation.servers())
        # Both added replicas synced state before the commit.
        assert len(handle.directory.transfers) == 2
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"
        assert handle.serializability().ok

    def test_shrink_rf3_to_2(self, protocol):
        reconfig = ReconfigPlan(
            name="shrink",
            requests=(set_replica_group("ox", ("sx", "sx.2"), at=20),),
        )
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=4)
        assert handle.directory.group("ox") == ("sx", "sx.2")
        assert "sx.3" not in handle.simulation.servers()
        # Pure shrink: nothing to sync, the change commits immediately.
        assert handle.directory.transfers == []
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"
        assert handle.serializability().ok

    def test_noop_change_is_recorded_and_free(self, protocol):
        reconfig = ReconfigPlan(
            name="noop",
            requests=(set_replica_group("ox", ("sx", "sx.2", "sx.3"), at=20),),
        )
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=2)
        assert handle.directory.epoch == 0
        noops = [
            dict(a.info)
            for a in handle.trace()
            if a.info and dict(a.info).get("reconfig") == "noop"
        ]
        assert len(noops) == 1

    def test_shrink_then_grow_back_unretires_the_name(self, protocol):
        """Regression: a replica name removed by one change and re-added by
        a later one must serve again — it used to stay in the directory's
        retired set forever and answer every request with epoch-mismatch
        until the round exhausted its retries."""
        reconfig = ReconfigPlan(
            name="shrink-then-grow-back",
            requests=(
                set_replica_group("ox", ("sx", "sx.2"), at=5),
                set_replica_group("ox", ("sx", "sx.2", "sx.3"), at=120),
            ),
        )
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=6)
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.3")
        assert not handle.directory.is_retired("sx.3")
        assert "sx.3" in handle.simulation.servers()
        assert final_read_values(handle, "R6")["ox"] == "v6-ox"
        assert handle.serializability().ok

    def test_two_sequential_changes(self, protocol):
        """grow then shrink back: the second change defers until the first
        commits (at-most-one-in-flight), then runs to completion."""
        reconfig = ReconfigPlan(
            name="grow-then-shrink",
            requests=(
                set_replica_group("ox", ("sx", "sx.2", "sx.3", "sx.4"), at=15),
                set_replica_group("ox", ("sx", "sx.2", "sx.3"), at=16),
            ),
        )
        handle = run_reconfig_workload(protocol, reconfig=reconfig, rounds=5)
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.3")
        assert handle.directory.epoch == 4  # two joint entries + two commits
        assert final_read_values(handle, "R5")["ox"] == "v5-ox"


class TestGuardsAndFailover:
    def test_retiring_the_designated_coordinator_is_rejected(self):
        """At consensus_factor=1 the coordinator is the first object's
        primary; a replica-group change that would retire it must fail at
        validation, not strand coordinator rounds mid-run."""
        reconfig = ReconfigPlan(
            requests=(set_replica_group("ox", ("sx.2", "sx.3", "sx.4"), at=10),)
        )
        with pytest.raises(ValueError, match="designated coordinator"):
            get_protocol("algorithm-b").build(
                num_readers=2,
                num_writers=2,
                num_objects=2,
                replication_factor=3,
                quorum="majority",
                reconfig=reconfig,
            )

    def test_replacing_primary_allowed_without_coordinator(self):
        """Algorithm A has no coordinator, so even the primary replica may
        be reconfigured away."""
        reconfig = ReconfigPlan(
            requests=(set_replica_group("ox", ("sx.2", "sx.3", "sx.4"), at=20),)
        )
        handle = run_reconfig_workload("algorithm-a", reconfig=reconfig, rounds=4)
        assert handle.directory.group("ox") == ("sx.2", "sx.3", "sx.4")
        assert "sx" not in handle.simulation.servers()
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"

    def test_sync_fails_over_when_the_first_source_is_dead(self):
        """The preferred state-transfer source (the first retained replica)
        is fail-stopped: the sync timer rotates to the next retained
        replica and the change still commits."""
        from repro.faults.plan import CrashEvent, FaultPlan

        plan = FaultPlan(
            name="dead-source",
            crashes=(CrashEvent(server="sx", at=5, recover=None),),
            seed=3,
        )
        reconfig = ReconfigPlan(
            name="replace-under-dead-source",
            requests=(set_replica_group("ox", ("sx", "sx.2", "sx.4"), at=30),),
        )
        handle = run_reconfig_workload(
            "algorithm-a",
            reconfig=reconfig,
            plan=plan,
            rounds=4,
            run_to_completion=False,
        )
        assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4")
        assert not handle.directory.in_flight()
        assert handle.directory.transfer_volume() >= 1
        retries = [
            dict(a.info)
            for a in handle.trace()
            if a.info and dict(a.info).get("reconfig") == "sync-done"
        ]
        assert retries and retries[0]["replica"] == "sx.4"


class TestEpochMismatchRetry:
    def test_retired_replica_answers_epoch_mismatch(self):
        """A request addressed to a retired replica is answered with
        epoch-mismatch instead of data (checked at the automaton level)."""
        _, reconfig = grow_group_mid_run("ox", 3, to_factor=4, at=10)
        handle = run_reconfig_workload("algorithm-b", reconfig=reconfig, rounds=3)
        server = handle.simulation.automaton("sx")
        server.directory.retired.add("sx")
        ctx = handle.simulation._contexts["sx"]
        from repro.ioa.actions import Message

        server.on_message(
            Message.make("read-val", "r1", "sx", {"txn": "RX", "key": None, "attempt": 9}),
            ctx,
        )
        reply = handle.simulation.pending_deliveries()[-1].message
        assert reply.msg_type == "epoch-mismatch"
        assert reply.get("txn") == "RX"
        assert reply.get("attempt") == 9
        assert reply.get("epoch") == handle.directory.epoch
        server.directory.retired.discard("sx")

    def test_rounds_tag_epoch_and_attempt(self):
        _, reconfig = grow_group_mid_run("ox", 3, to_factor=4, at=10)
        handle = run_reconfig_workload("algorithm-b", reconfig=reconfig, rounds=3)
        tagged = [
            a.message
            for a in handle.trace()
            if a.message is not None
            and a.message.msg_type in ("write-val", "read-val")
            and a.message.get("epoch") is not None
        ]
        assert tagged, "epoch-aware rounds must stamp requests"
        assert all(m.get("attempt") == 1 for m in tagged)
