"""End-to-end consensus-group reconfiguration: joint consensus in the log.

Grow and shrink the replicated-coordinator group mid-run, through the
``C_old,new`` → ``C_new`` log entries: commit quorums and elections must
hold in both configurations while joint, new members catch up through
ordinary log replication, and a leader excluded by ``C_new`` hands off after
committing it.
"""

from __future__ import annotations

import pytest

from repro.consensus.coordinator import CONFIG
from repro.consensus.reconfig import ReconfigPlan, set_consensus_group
from repro.faults import ChaosScheduler, shrink_consensus_group_mid_run
from repro.ioa import FIFOScheduler, RandomScheduler

from tests.invariants import consensus_members
from tests.reconfig.conftest import final_read_values, run_reconfig_workload

pytestmark = pytest.mark.invariants


def run_consensus_change(requests, protocol="algorithm-b", seed=3, scheduler=None, rounds=4):
    return run_reconfig_workload(
        protocol,
        reconfig=ReconfigPlan(name="cns", requests=tuple(requests)),
        consensus_factor=3,
        replication_factor=1,
        quorum="read-one-write-all",
        seed=seed,
        scheduler=scheduler,
        rounds=rounds,
    )


class TestGrowConsensusGroup:
    def test_grow_3_to_5(self):
        handle = run_consensus_change(
            [set_consensus_group(("coor", "coor.2", "coor.3", "coor.4", "coor.5"), at=20)]
        )
        group = handle.simulation.topology.consensus_group()
        assert group == ("coor", "coor.2", "coor.3", "coor.4", "coor.5")
        members = consensus_members(handle)
        # Every member — including the two spawned mid-run — holds the full
        # committed log and applied the same state machine transitions.
        assert len({m.log.commit_index for m in members}) == 1
        assert len({len(m.machine.list) for m in members}) == 1
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"

    def test_config_entries_in_every_log(self):
        handle = run_consensus_change(
            [set_consensus_group(("coor", "coor.2", "coor.3", "coor.4"), at=20)]
        )
        for member in consensus_members(handle):
            phases = [
                dict(e.payload).get("phase")
                for e in member.log.committed_entries()
                if e.msg_type == CONFIG
            ]
            assert phases == ["joint", "new"], member.name

    def test_grown_group_survives_later_leader_loss(self):
        """After growing 3 → 5, the joint machinery leaves a healthy group:
        a later election (forced by stepping the leader down) still works."""
        handle = run_consensus_change(
            [set_consensus_group(("coor", "coor.2", "coor.3", "coor.4", "coor.5"), at=15)],
            rounds=3,
        )
        members = {m.name: m for m in consensus_members(handle)}
        leader = next(m for m in members.values() if m.election.is_leader)
        assert leader.joint is None
        assert leader.group == ("coor", "coor.2", "coor.3", "coor.4", "coor.5")


class TestShrinkConsensusGroup:
    def test_shrink_drops_leader_and_hands_off(self):
        _, reconfig = shrink_consensus_group_mid_run(3, to_factor=2, at=20)
        handle = run_reconfig_workload(
            "algorithm-b",
            reconfig=reconfig,
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            rounds=4,
        )
        group = handle.simulation.topology.consensus_group()
        assert group == ("coor.2", "coor.3")
        assert "coor" not in [a.name for a in handle.simulation.automata()]
        handoffs = [
            dict(a.info)
            for a in handle.trace()
            if a.info and dict(a.info).get("consensus") == "leader-handoff"
        ]
        assert [h["member"] for h in handoffs] == ["coor"]
        # A successor led the remaining requests to completion.
        assert any(m.election.is_leader for m in consensus_members(handle))
        assert not handle.simulation.incomplete_transactions()
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"

    def test_shrink_keeping_leader(self):
        _, reconfig = shrink_consensus_group_mid_run(3, to_factor=2, at=20, drop_leader=False)
        handle = run_reconfig_workload(
            "algorithm-b",
            reconfig=reconfig,
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            rounds=4,
        )
        assert handle.simulation.topology.consensus_group() == ("coor", "coor.2")
        leader = next(m for m in consensus_members(handle) if m.election.is_leader)
        assert leader.name == "coor"  # no hand-off needed
        assert not handle.simulation.incomplete_transactions()

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_shrink_across_random_schedules(self, seed):
        _, reconfig = shrink_consensus_group_mid_run(3, to_factor=2, at=20)
        handle = run_reconfig_workload(
            "algorithm-b",
            reconfig=reconfig,
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            seed=seed,
            scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
            rounds=4,
        )
        assert not handle.simulation.incomplete_transactions(), seed
        assert handle.serializability().ok, seed


class TestReconfigUnderFailover:
    @pytest.mark.parametrize("seed", (0, 1, 2, 3, 4))
    def test_leader_crash_during_consensus_change(self, seed):
        """The leader fail-stops right as the membership change starts: the
        buffered ``cns-reconfig`` request survives at the followers, the
        successor re-proposes it as a fresh joint entry, and the change
        still commits with every transaction completing."""
        from repro.faults import coordinator_failover

        handle = run_reconfig_workload(
            "algorithm-b",
            reconfig=ReconfigPlan(
                name="grow-under-crash",
                requests=(
                    set_consensus_group(("coor", "coor.2", "coor.3", "coor.4"), at=20),
                ),
            ),
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            plan=coordinator_failover(leader="coor", at=22, seed=seed),
            seed=seed,
            scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
            rounds=4,
            run_to_completion=False,
        )
        assert not handle.simulation.incomplete_transactions(), seed
        assert handle.simulation.topology.consensus_group() == (
            "coor", "coor.2", "coor.3", "coor.4",
        )
        assert handle.directory.epoch == 2
        assert handle.serializability().ok, seed


class TestJointQuorumSemantics:
    def test_commit_needs_both_majorities_while_joint(self):
        """White-box: a leader in a joint config refuses to commit with only
        the old majority."""
        handle = run_consensus_change(
            [set_consensus_group(("coor", "coor.2", "coor.3", "coor.4", "coor.5"), at=20)],
            rounds=2,
        )
        leader = next(m for m in consensus_members(handle) if m.election.is_leader)
        leader.joint = (("coor", "coor.2", "coor.3"), ("coor.4", "coor.5"))
        assert leader._quorum_ok({"coor", "coor.2"}) is False  # old only
        assert leader._quorum_ok({"coor.4", "coor.5"}) is False  # new only
        assert leader._quorum_ok({"coor", "coor.2", "coor.4", "coor.5"}) is True
        leader.joint = None
        assert leader._quorum_ok({"coor", "coor.2", "coor.3"}) is True

    def test_votes_restricted_to_current_config(self):
        """A member outside the voter's current config is not granted votes."""
        handle = run_consensus_change(
            [set_consensus_group(("coor.2", "coor.3"), at=20)], rounds=3
        )
        member = consensus_members(handle)[0]
        assert "coor" not in member.group

    def test_consensus_factor_1_rejects_consensus_reconfig(self):
        with pytest.raises(ValueError, match="consensus_factor >= 2"):
            run_reconfig_workload(
                "algorithm-b",
                reconfig=ReconfigPlan(
                    requests=(set_consensus_group(("coor", "coor.2"), at=5),)
                ),
                consensus_factor=1,
                replication_factor=1,
                quorum="read-one-write-all",
            )
