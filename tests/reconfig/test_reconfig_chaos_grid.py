"""Reconfiguration-under-chaos grids (ROADMAP open item).

The PR 4 grids reconfigure under a single crash; this grid crosses the
membership machinery with the drop/partition library: the replace-dead and
grow scenarios run under a lossy network (transport retransmission healing
fair loss) across the protocol families and a seed set, with the shared
safety invariants asserted per cell.  A second grid does the same for the
*controller* — fail-stop a replica under loss and require autonomous
convergence back to a full-strength group.

``CHAOS_GRID_SEEDS`` (env) widens the seed set — the nightly CI chaos-grid
job runs with 20 seeds, PRs with the default 3 — so schedule-space coverage
scales without editing the grid.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import (
    ChaosScheduler,
    FaultInjector,
    auto_heal,
    grow_group_mid_run,
    replace_dead_replica,
)
from repro.faults.plan import CrashEvent, DropPolicy, FaultPlan, RetryPolicy
from repro.ioa import RandomScheduler
from repro.protocols import get_protocol

from tests import invariants
from tests.reconfig.conftest import run_reconfig_workload

SEEDS = tuple(range(int(os.environ.get("CHAOS_GRID_SEEDS", "3"))))

#: the reconfig-capable families the grid crosses (s2pl excluded: its lock
#: rounds block on a fail-stopped replica by design)
PROTOCOLS = ("algorithm-a", "algorithm-b", "algorithm-c", "occ-double-collect", "eiger")

pytestmark = pytest.mark.invariants


def lossy_with(crashes=(), seed=0, probability=0.12):
    return FaultPlan(
        name="lossy-reconfig",
        drops=DropPolicy(probability=probability, max_consecutive=4),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        crashes=tuple(crashes),
        seed=seed,
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_replace_dead_replica_under_loss(protocol, seed):
    """The headline scenario with a lossy network on top: the joint change
    still commits, every transaction completes, invariants hold."""
    _, reconfig = replace_dead_replica("ox", 3, crash_at=8, reconfig_at=30, seed=seed)
    plan = lossy_with(crashes=(CrashEvent(server="sx.3", at=8, recover=None),), seed=seed)
    handle = run_reconfig_workload(
        protocol,
        reconfig=reconfig,
        plan=plan,
        rounds=4,
        seed=seed,
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        run_to_completion=False,
    )
    assert not handle.simulation.incomplete_transactions(), (protocol, seed)
    assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4"), (protocol, seed)
    invariants.check_all(handle)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_grow_group_under_loss(protocol, seed):
    """Growth with state transfer completes under fair loss (sync messages
    ride the same retransmitting transport as everything else)."""
    _, reconfig = grow_group_mid_run("ox", 3, to_factor=4, at=20)
    handle = run_reconfig_workload(
        protocol,
        reconfig=reconfig,
        plan=lossy_with(seed=seed),
        rounds=4,
        seed=seed,
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        run_to_completion=False,
    )
    assert not handle.simulation.incomplete_transactions(), (protocol, seed)
    assert handle.directory.group("ox") == ("sx", "sx.2", "sx.3", "sx.4"), (protocol, seed)
    invariants.check_all(handle)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", ("algorithm-b", "algorithm-c", "occ-double-collect"))
def test_controller_converges_under_loss(protocol, seed):
    """Chaos-grid coverage for the controller: fail-stop a replica under a
    lossy plan and the control loop still converges to a full-strength
    group, with the safety invariants holding (probes and acks can be lost
    — detection only needs the surviving siblings to keep answering)."""
    _, policy = auto_heal("ox", 3, crash_at=8, seed=seed)
    plan = lossy_with(crashes=(CrashEvent(server="sx.3", at=8, recover=None),), seed=seed)
    protocol_obj = get_protocol(protocol)
    num_readers = 1 if not protocol_obj.supports_multiple_readers else 2
    handle = protocol_obj.build(
        num_readers=num_readers,
        num_writers=2,
        num_objects=2,
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
        replication_factor=3,
        quorum="majority",
        controller=policy,
        fault_plane=FaultInjector(plan, seed=seed),
    )
    previous = None
    for index in range(1, 5):
        previous = handle.submit_write(
            {obj: f"v{index}-{obj}" for obj in handle.objects},
            writer=handle.writers[(index - 1) % 2],
            txn_id=f"W{index}",
            after=[previous] if previous else (),
        )
        handle.submit_read(
            handle.objects,
            reader=handle.readers[(index - 1) % len(handle.readers)],
            txn_id=f"R{index}",
            after=[previous],
        )
    handle.run()
    invariants.register(handle)
    assert not handle.simulation.incomplete_transactions(), (protocol, seed)
    # Convergence: the dead replica is out, a full-strength group serves.
    group = handle.directory.group("ox")
    assert "sx.3" not in group and len(group) == 3, (protocol, seed, group)
    assert handle.directory.is_retired("sx.3"), (protocol, seed)
    assert not handle.directory.in_flight(), (protocol, seed)
    invariants.check_all(handle)
