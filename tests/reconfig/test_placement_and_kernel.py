"""Unit tests: placement epoch primitives and dynamic kernel membership."""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler
from repro.ioa.automaton import ServerAutomaton
from repro.ioa.errors import SimulationError, UnknownProcessError
from repro.ioa.simulation import Simulation
from repro.txn.placement import Placement, next_replica_names, replica_names


# ----------------------------------------------------------------------
# Placement primitives
# ----------------------------------------------------------------------
class TestPlacementEpochPrimitives:
    def test_with_group_replaces_one_group(self):
        placement = Placement.for_objects(("ox", "oy"), 3)
        updated = placement.with_group("ox", ("sx", "sx.2", "sx.4"))
        assert updated.group("ox") == ("sx", "sx.2", "sx.4")
        assert updated.group("oy") == placement.group("oy")
        # The original is untouched (immutably versioned epochs).
        assert placement.group("ox") == ("sx", "sx.2", "sx.3")

    def test_with_group_unknown_object(self):
        placement = Placement.for_objects(("ox",), 1)
        with pytest.raises(KeyError, match="not placed"):
            placement.with_group("oz", ("sz",))

    def test_with_group_rejects_cross_group_server(self):
        placement = Placement.for_objects(("ox", "oy"), 2)
        with pytest.raises(ValueError, match="two replica groups"):
            placement.with_group("ox", ("sx", "sy"))

    def test_next_replica_names_skip_taken(self):
        group = replica_names("ox", 3)
        assert next_replica_names("ox", group) == ("sx.4",)
        assert next_replica_names("ox", group, count=2) == ("sx.4", "sx.5")

    def test_next_replica_names_fill_gaps(self):
        assert next_replica_names("ox", ("sx", "sx.3")) == ("sx.2",)

    def test_next_replica_names_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            next_replica_names("ox", ("sx",), count=0)


# ----------------------------------------------------------------------
# Dynamic kernel membership
# ----------------------------------------------------------------------
class _Echo(ServerAutomaton):
    def __init__(self, name):
        super().__init__(name)
        self.started = False
        self.seen = []

    def on_start(self, ctx):
        self.started = True

    def on_message(self, message, ctx):
        self.seen.append(message.msg_type)


class TestDynamicMembership:
    def make_kernel(self):
        simulation = Simulation(scheduler=FIFOScheduler())
        simulation.add_automaton(_Echo("a"))
        simulation.add_automaton(_Echo("b"))
        return simulation

    def test_mid_run_add_records_start(self):
        simulation = self.make_kernel()
        simulation.start()
        late = _Echo("late")
        simulation.add_automaton(late)
        assert late.started  # on_start ran at the point of joining
        starts = [a for a in simulation.trace if a.kind.name == "START"]
        assert [a.actor for a in starts] == ["a", "b", "late"]

    def test_added_automaton_can_communicate(self):
        simulation = self.make_kernel()
        simulation.start()
        late = simulation.add_automaton(_Echo("late"))
        simulation._contexts["a"].send("late", "ping", {})
        simulation.run()
        assert late.seen == ["ping"]

    def test_remove_automaton_retires_cleanly(self):
        simulation = self.make_kernel()
        simulation.start()
        assert simulation.remove_automaton("b") is True
        assert "b" not in simulation.servers()
        with pytest.raises(UnknownProcessError):
            simulation.automaton("b")
        # Sends to the retired name now fail loudly.
        with pytest.raises(UnknownProcessError):
            simulation._contexts["a"].send("b", "ping", {})
        retired = [
            a for a in simulation.trace
            if a.info and dict(a.info).get("lifecycle") == "retired"
        ]
        assert [a.actor for a in retired] == ["b"]

    def test_remove_refuses_with_pending_mail_unless_forced(self):
        simulation = self.make_kernel()
        simulation.start()
        simulation._contexts["a"].send("b", "ping", {})
        assert simulation.remove_automaton("b") is False  # mail still pending
        assert simulation.automaton("b")  # still registered
        assert simulation.remove_automaton("b", force=True) is True
        simulation.run()  # the dropped delivery never fires

    def test_remove_refuses_with_pending_outbound_mail(self):
        """A message *from* a retired process must die with it: were it
        delivered after the removal, its receiver would reply to a ghost
        and crash the send (regression: stale append from a retired
        consensus leader acked after its retirement)."""
        simulation = self.make_kernel()
        simulation.start()
        simulation._contexts["b"].send("a", "ping", {})
        assert simulation.remove_automaton("b") is False  # outbound in flight
        assert simulation.remove_automaton("b", force=True) is True
        simulation.run()
        assert simulation.automaton("a").seen == []  # the orphan was dropped

    def test_remove_drops_owned_timers(self):
        simulation = self.make_kernel()
        simulation.start()
        simulation._contexts["b"].set_timeout(5, kind="x")
        assert simulation.pending_timeouts()
        simulation.remove_automaton("b")
        assert not simulation.pending_timeouts()

    def test_remove_unknown_name(self):
        simulation = self.make_kernel()
        with pytest.raises(UnknownProcessError):
            simulation.remove_automaton("ghost")

    def test_duplicate_add_still_rejected_mid_run(self):
        simulation = self.make_kernel()
        simulation.start()
        with pytest.raises(SimulationError):
            simulation.add_automaton(_Echo("a"))

    def test_topology_unregister_cleans_groups(self):
        simulation = self.make_kernel()
        simulation.topology.set_replica_groups({"ox": ("a", "b")})
        simulation.topology.set_consensus_group(("a", "b"))
        simulation.start()
        simulation.remove_automaton("b")
        assert simulation.topology.replica_group("ox") == ("a",)
        assert simulation.topology.consensus_group() == ("a",)

    def test_topology_update_replica_group(self):
        simulation = self.make_kernel()
        simulation.topology.set_replica_groups({"ox": ("a", "b")})
        simulation.topology.update_replica_group("ox", ("a", "c"))
        assert simulation.topology.replica_group("ox") == ("a", "c")
