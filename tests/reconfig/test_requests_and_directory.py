"""Unit tests: reconfiguration requests, plans and the placement directory."""

from __future__ import annotations

import pytest

from repro.consensus.reconfig import (
    CONSENSUS_GROUP,
    REPLICA_GROUP,
    PlacementDirectory,
    ReconfigPlan,
    ReconfigRequest,
    set_consensus_group,
    set_replica_group,
)
from repro.ioa.errors import SimulationError
from repro.txn.placement import MajorityQuorum, Placement, ReadOneWriteAll


def make_directory(rf: int = 3, consensus=()):
    placement = Placement.for_objects(("ox", "oy"), rf)
    return PlacementDirectory(placement, MajorityQuorum(), consensus)


# ----------------------------------------------------------------------
# Requests and plans
# ----------------------------------------------------------------------
class TestRequests:
    def test_replica_group_request(self):
        request = set_replica_group("ox", ("sx", "sx.2"), at=7)
        assert request.kind == REPLICA_GROUP
        assert request.object_id == "ox"
        assert request.group == ("sx", "sx.2")
        assert request.at == 7

    def test_consensus_group_request(self):
        request = set_consensus_group(("coor.2", "coor.3"), at=3)
        assert request.kind == CONSENSUS_GROUP
        assert request.group == ("coor.2", "coor.3")

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            set_replica_group("ox", (), at=0)

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            set_replica_group("ox", ("sx", "sx"), at=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown reconfiguration kind"):
            ReconfigRequest(kind="nope", group=("sx",))

    def test_replica_request_needs_object(self):
        with pytest.raises(ValueError, match="names its object"):
            ReconfigRequest(kind=REPLICA_GROUP, group=("sx",))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            set_replica_group("ox", ("sx",), at=-1)

    def test_plan_describe(self):
        plan = ReconfigPlan(
            name="p", requests=(set_replica_group("ox", ("sx", "sx.2"), at=4),)
        )
        assert "ox" in plan.describe()
        assert ReconfigPlan().describe().endswith("none")


# ----------------------------------------------------------------------
# The directory: epochs, joint quorums, retirement
# ----------------------------------------------------------------------
class TestDirectory:
    def test_initial_view_matches_placement(self):
        directory = make_directory()
        assert directory.epoch == 0
        assert directory.group("ox") == ("sx", "sx.2", "sx.3")
        assert directory.targets("ox") == ("sx", "sx.2", "sx.3")
        assert directory.read_needed("ox") == ((("sx", "sx.2", "sx.3"), 2),)
        assert not directory.in_flight()

    def test_joint_view_unions_targets_and_doubles_quorums(self):
        directory = make_directory()
        directory.begin_joint("ox", ("sx", "sx.2", "sx.4"), vtime=5)
        assert directory.epoch == 1
        assert directory.in_flight()
        assert directory.targets("ox") == ("sx", "sx.2", "sx.3", "sx.4")
        assert directory.group("ox") == ("sx", "sx.2", "sx.4")
        needs = dict(directory.write_needed("ox"))
        assert needs[("sx", "sx.2", "sx.3")] == 2
        assert needs[("sx", "sx.2", "sx.4")] == 2

    def test_commit_retires_removed_and_bumps_epoch(self):
        directory = make_directory()
        directory.begin_joint("ox", ("sx", "sx.2", "sx.4"))
        removed = directory.commit_joint("ox")
        assert removed == ("sx.3",)
        assert directory.is_retired("sx.3")
        assert directory.epoch == 2
        assert directory.placement.group("ox") == ("sx", "sx.2", "sx.4")
        assert not directory.in_flight()

    def test_at_most_one_change_in_flight(self):
        directory = make_directory()
        directory.begin_joint("ox", ("sx", "sx.2", "sx.4"))
        with pytest.raises(SimulationError, match="at most one configuration change"):
            directory.begin_joint("oy", ("sy", "sy.2", "sy.4"))

    def test_consensus_joint_blocks_storage_joint(self):
        directory = make_directory(consensus=("coor", "coor.2", "coor.3"))
        directory.begin_consensus_joint(("coor.2", "coor.3"))
        with pytest.raises(SimulationError, match="at most one configuration change"):
            directory.begin_joint("ox", ("sx", "sx.2", "sx.4"))

    def test_commit_without_joint_fails(self):
        directory = make_directory()
        with pytest.raises(SimulationError, match="no joint configuration"):
            directory.commit_joint("ox")
        with pytest.raises(SimulationError, match="no consensus joint"):
            directory.commit_consensus_joint()

    def test_consensus_targets_union_while_joint(self):
        directory = make_directory(consensus=("coor", "coor.2", "coor.3"))
        assert directory.coordinator_targets() == ("coor", "coor.2", "coor.3")
        directory.begin_consensus_joint(("coor.2", "coor.3", "coor.4"))
        assert directory.coordinator_targets() == ("coor", "coor.2", "coor.3", "coor.4")
        removed = directory.commit_consensus_joint()
        assert removed == ("coor",)
        assert directory.consensus_group() == ("coor.2", "coor.3", "coor.4")
        assert directory.coordinator_targets() == ("coor.2", "coor.3", "coor.4")

    def test_consensus_joint_requires_group(self):
        directory = make_directory(consensus=())
        with pytest.raises(SimulationError, match="no consensus group"):
            directory.begin_consensus_joint(("coor.2",))

    def test_new_group_validated_against_policy(self):
        placement = Placement.for_objects(("ox",), 1)
        directory = PlacementDirectory(placement, ReadOneWriteAll(), ())
        with pytest.raises(ValueError):
            directory.begin_joint("ox", ())

    def test_transfer_and_retry_accounting(self):
        directory = make_directory()
        directory.record_transfer("ox", 3)
        directory.record_transfer("oy", 2)
        directory.note_retry("R1", 17)
        assert directory.transfer_volume() == 5
        assert directory.retries == [("R1", 17)]

    def test_transitions_record_both_phases(self):
        directory = make_directory()
        directory.begin_joint("ox", ("sx", "sx.2", "sx.4"), vtime=10)
        directory.commit_joint("ox", vtime=20)
        kinds = [t["kind"] for t in directory.transitions]
        assert kinds == ["joint-begin", "commit"]
        assert directory.transitions[0]["old"] == ("sx", "sx.2", "sx.3")
        assert directory.transitions[1]["new"] == ("sx", "sx.2", "sx.4")

    def test_describe_mentions_joint_and_retired(self):
        directory = make_directory()
        directory.begin_joint("ox", ("sx", "sx.2", "sx.4"))
        assert "->" in directory.describe()
        directory.commit_joint("ox")
        assert "sx.3" in directory.describe()
