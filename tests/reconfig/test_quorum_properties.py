"""Property-based quorum tests over joint configurations.

Randomized (seeded, fully deterministic) checks that any read quorum of
``C_old,new`` intersects any write quorum — of the joint configuration, of
``C_old`` alone, and of ``C_new`` alone — for all group sizes 1–7, both
registered policies, and skewed/non-uniform groups (different sizes and
arbitrary member names, overlapping or disjoint).
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.txn.placement import MajorityQuorum, ReadOneWriteAll, quorum_policy_names

from tests.invariants import joint_quorums_intersect

POLICIES = {"majority": MajorityQuorum(), "read-one-write-all": ReadOneWriteAll()}
SIZES = range(1, 8)

pytestmark = pytest.mark.invariants


def names(prefix: str, n: int):
    return tuple(f"{prefix}{i}" for i in range(1, n + 1))


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("old_size", SIZES)
@pytest.mark.parametrize("new_size", SIZES)
def test_joint_quorums_intersect_all_sizes(policy_name, old_size, new_size):
    """Exhaustive over minimal quorum subsets, for every (|old|, |new|) pair
    1–7 × 1–7, with maximal overlap between the groups (the common case:
    grow/shrink/replace keeps most members)."""
    policy = POLICIES[policy_name]
    overlap = min(old_size, new_size) - (1 if min(old_size, new_size) > 1 else 0)
    shared = names("s", overlap)
    old = shared + names("o", old_size - overlap)
    new = shared + names("n", new_size - overlap)
    assert joint_quorums_intersect(old, new, policy)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("seed", (0, 1, 2, 3, 4))
def test_joint_quorums_intersect_random_skewed_groups(policy_name, seed):
    """Seeded random groups: skewed sizes, arbitrary names, any overlap —
    including fully disjoint old/new (a complete group swap)."""
    policy = POLICIES[policy_name]
    rng = random.Random(seed * 7919 + 13)
    pool = [f"srv-{i}" for i in range(16)]
    for _ in range(25):
        old = tuple(rng.sample(pool, rng.randint(1, 7)))
        new = tuple(rng.sample(pool, rng.randint(1, 7)))
        assert joint_quorums_intersect(old, new, policy), (old, new, policy_name)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_single_epoch_intersection_within_each_config(policy_name):
    """The classic (non-joint) property both policies are validated for:
    R + W > n within every group size."""
    policy = POLICIES[policy_name]
    for n in SIZES:
        group = names("s", n)
        r, w = policy.read_quorum(n), policy.write_quorum(n)
        assert all(
            set(rq) & set(wq)
            for rq in combinations(group, r)
            for wq in combinations(group, w)
        )


def test_registered_policy_names_covered():
    """Every registered quorum policy is exercised by these properties."""
    assert set(POLICIES) == set(quorum_policy_names()) - {"rowa"}


@pytest.mark.parametrize("seed", (0, 1))
def test_joint_read_misses_write_without_old_quorum(seed):
    """Counter-property: dropping the old-group requirement from the joint
    read quorum *does* break intersection (i.e. the joint rule is not
    vacuous) — a read quorum of C_new alone can miss a write quorum of
    C_old when the groups barely overlap."""
    policy = MajorityQuorum()
    rng = random.Random(seed)
    found_gap = False
    pool = [f"srv-{i}" for i in range(12)]
    for _ in range(50):
        old = tuple(rng.sample(pool, 5))
        new = tuple(n for n in pool if n not in old)[:5]
        r_new = policy.read_quorum(len(new))
        w_old = policy.write_quorum(len(old))
        for read_q in combinations(new, r_new):
            for write_q in combinations(old, w_old):
                if not (set(read_q) & set(write_q)):
                    found_gap = True
    assert found_gap
