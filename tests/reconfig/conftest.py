"""Shared helpers for the membership-reconfiguration tests.

``run_reconfig_workload`` submits a longer chained workload than the golden
fixed workload so the scheduled membership change lands *in the middle* of
live traffic; every handle is registered with the shared invariant checker
(``tests/invariants.py``) and the autouse fixture re-checks the safety
invariants — including the two new reconfiguration invariants — at the end
of every test in this suite.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, FaultInjector
from repro.ioa import FIFOScheduler
from repro.protocols import get_protocol

from tests import invariants


@pytest.fixture(autouse=True)
def invariant_autocheck():
    """Apply the shared safety-invariant checker to every run of this suite."""
    invariants.reset()
    yield
    invariants.check_registered()


def run_reconfig_workload(
    protocol_name: str,
    reconfig=None,
    plan=None,
    rounds: int = 3,
    replication_factor: int = 3,
    quorum: str = "majority",
    consensus_factor: int = 1,
    num_objects: int = 2,
    seed: int = 3,
    scheduler=None,
    persistence=None,
    run_to_completion: bool = True,
):
    """Build, submit ``rounds`` chained write+read pairs, run; return handle.

    Writes are chained (``W2 after W1`` …) and each read follows the latest
    write, so the workload stays alive across the whole reconfiguration
    window and the final read must observe the final write through whatever
    configuration is current by then.
    """
    protocol = get_protocol(protocol_name)
    num_readers = 1 if not protocol.supports_multiple_readers else 2
    handle = protocol.build(
        num_readers=num_readers,
        num_writers=2,
        num_objects=num_objects,
        scheduler=scheduler or ChaosScheduler(base=FIFOScheduler()),
        seed=seed,
        replication_factor=replication_factor,
        quorum=quorum,
        consensus_factor=consensus_factor,
        reconfig=reconfig,
        persistence=persistence,
        fault_plane=FaultInjector(plan, seed=seed) if plan is not None else None,
    )
    previous = None
    for index in range(1, rounds + 1):
        writer = handle.writers[(index - 1) % len(handle.writers)]
        previous = handle.submit_write(
            {obj: f"v{index}-{obj}" for obj in handle.objects},
            writer=writer,
            txn_id=f"W{index}",
            after=[previous] if previous else (),
        )
        reader = handle.readers[(index - 1) % len(handle.readers)]
        handle.submit_read(
            handle.objects, reader=reader, txn_id=f"R{index}", after=[previous]
        )
    if run_to_completion:
        handle.run_to_completion()
    else:
        handle.run()
    return invariants.register(handle)


def final_read_values(handle, txn_id: str):
    """The values a read returned, as a dict."""
    record = handle.simulation.transaction_record(txn_id)
    assert record is not None and record.complete, txn_id
    return dict(record.result.values)
