"""ReconfigMetrics collection and the reconfiguration sweep grid."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentConfig,
    ReconfigMetrics,
    WorkloadSpec,
    reconfig_grid_rows,
    run_experiment,
    sweep_reconfig,
)
from repro.faults import grow_group_mid_run, replace_dead_replica


def run_replace(protocol="algorithm-b", seed=13):
    plan, reconfig = replace_dead_replica("ox", 3, seed=seed)
    config = ExperimentConfig(
        protocol=protocol,
        scheduler="chaos",
        seed=seed,
        replication_factor=3,
        quorum="majority",
        faults=plan,
        reconfig=reconfig,
        workload=WorkloadSpec(reads_per_reader=5, writes_per_writer=3, seed=seed),
    )
    return run_experiment(config)


class TestReconfigMetrics:
    def test_block_absent_without_plan(self):
        config = ExperimentConfig(
            protocol="algorithm-b",
            workload=WorkloadSpec(reads_per_reader=2, writes_per_writer=2, seed=1),
        )
        assert run_experiment(config).metrics.reconfig is None

    def test_replace_scenario_accounting(self):
        result = run_replace()
        block = result.metrics.reconfig
        assert isinstance(block, ReconfigMetrics)
        assert block.epochs == 2
        assert block.reconfigs_completed == 1
        assert block.joint_windows == 1
        assert block.retired_servers == 1
        assert block.transfer_versions >= 1
        assert block.epoch_retries == 0
        assert block.unavailability_window == 0

    def test_availability_and_verdict(self):
        result = run_replace()
        assert result.metrics.faults.availability == 1.0
        assert result.snow.satisfies_s is True

    def test_as_dict_and_describe(self):
        block = run_replace().metrics.reconfig
        record = block.as_dict()
        assert set(record) == {
            "epochs",
            "reconfigs_completed",
            "joint_windows",
            "transfer_versions",
            "epoch_retries",
            "unavailability_window",
            "retired_servers",
        }
        assert "epochs=2" in block.describe()

    def test_grow_scenario_transfers_to_every_added_replica(self):
        _, reconfig = grow_group_mid_run("ox", 3, to_factor=5)
        config = ExperimentConfig(
            protocol="algorithm-a",
            num_readers=1,
            scheduler="chaos",
            seed=13,
            replication_factor=3,
            quorum="majority",
            reconfig=reconfig,
            workload=WorkloadSpec(reads_per_reader=5, writes_per_writer=3, seed=13),
        )
        block = run_experiment(config).metrics.reconfig
        assert block.reconfigs_completed == 1
        assert block.retired_servers == 0
        assert block.transfer_versions >= 2


class TestSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return sweep_reconfig(
            protocols=("algorithm-b",),
            workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=2, read_size=2, write_size=2, seed=13),
        )

    def test_grid_shape(self, grid):
        assert set(grid) == {"algorithm-b"}
        assert set(grid["algorithm-b"]) == {
            "none",
            "replace-dead-replica",
            "grow-group",
            "lossy-replace-p05",
            "lossy-replace-p15",
            "lossy-replace-p30",
        }

    def test_rows_carry_reconfig_columns(self, grid):
        rows = reconfig_grid_rows(grid)
        by_scenario = {r["scenario"]: r for r in rows}
        assert "epochs" not in by_scenario["none"]
        assert by_scenario["replace-dead-replica"]["epochs"] == 2
        assert by_scenario["grow-group"]["transfer_versions"] >= 2

    def test_acceptance_row(self, grid):
        """The acceptance criteria of the reconfiguration layer, as data."""
        rows = reconfig_grid_rows(grid)
        by_scenario = {r["scenario"]: r for r in rows}
        replaced = by_scenario["replace-dead-replica"]
        assert replaced["availability"] == 1.0
        assert replaced["unavailability_window"] == 0
        assert replaced["snow"] == by_scenario["none"]["snow"]
        assert replaced["consistent"] is True
