"""Unit tests for schedulers and the rule-driven adversary."""

from __future__ import annotations

import pytest

from repro.ioa.actions import Message
from repro.ioa.errors import SchedulerError
from repro.ioa.scheduler import (
    AdversarialScheduler,
    DelayRule,
    FIFOScheduler,
    LIFOScheduler,
    PendingDelivery,
    PendingInvocation,
    PriorityScheduler,
    RandomScheduler,
    holds_invocation,
    holds_message,
    never,
)


def deliveries(count: int, msg_type: str = "m", dst: str = "sx"):
    return [
        PendingDelivery(message=Message.make(msg_type, "r1", dst, {"n": i}), enqueued_at=i)
        for i in range(count)
    ]


class FakeKernel:
    """Just enough kernel surface for rules that look at transaction records."""

    def __init__(self):
        self.records = {}
        self.trace = []

    def transaction_record(self, txn_id):
        return self.records.get(txn_id)


class TestBasicSchedulers:
    def test_fifo_picks_oldest(self):
        assert FIFOScheduler().choose(deliveries(3), None) == 0

    def test_lifo_picks_newest(self):
        assert LIFOScheduler().choose(deliveries(3), None) == 2

    def test_choose_on_empty_raises(self):
        with pytest.raises(SchedulerError):
            FIFOScheduler().choose([], None)

    def test_random_is_deterministic_per_seed(self):
        first = RandomScheduler(seed=5)
        second = RandomScheduler(seed=5)
        pending = deliveries(10)
        picks_first = [first.choose(pending, None) for _ in range(20)]
        picks_second = [second.choose(pending, None) for _ in range(20)]
        assert picks_first == picks_second

    def test_random_reset_restarts_sequence(self):
        scheduler = RandomScheduler(seed=9)
        pending = deliveries(10)
        initial = [scheduler.choose(pending, None) for _ in range(10)]
        scheduler.reset()
        assert [scheduler.choose(pending, None) for _ in range(10)] == initial

    def test_priority_scheduler_uses_key(self):
        pending = deliveries(5)
        scheduler = PriorityScheduler(key=lambda event: -event.enqueued_at)
        assert scheduler.choose(pending, None) == 4

    def test_validate_choice_bounds(self):
        with pytest.raises(SchedulerError):
            FIFOScheduler.validate_choice(7, deliveries(3))


class TestRuleHelpers:
    def test_holds_message_matches_type_src_dst(self):
        holds = holds_message(msg_type="read", src="r1", dst="sx")
        matching = PendingDelivery(message=Message.make("read", "r1", "sx", {}), enqueued_at=0)
        wrong_type = PendingDelivery(message=Message.make("write", "r1", "sx", {}), enqueued_at=0)
        assert holds(matching)
        assert not holds(wrong_type)

    def test_holds_message_with_predicate(self):
        holds = holds_message(predicate=lambda m: m.get("txn") == "R1")
        matching = PendingDelivery(message=Message.make("read", "r1", "sx", {"txn": "R1"}), enqueued_at=0)
        other = PendingDelivery(message=Message.make("read", "r1", "sx", {"txn": "R2"}), enqueued_at=0)
        assert holds(matching)
        assert not holds(other)

    def test_holds_message_ignores_invocations(self):
        holds = holds_message(msg_type="read")
        invocation = PendingInvocation(client="r1", txn=None, txn_id="R1", enqueued_at=0)
        assert not holds(invocation)

    def test_holds_invocation(self):
        holds = holds_invocation(client="r1")
        invocation = PendingInvocation(client="r1", txn=None, txn_id="R1", enqueued_at=0)
        delivery = deliveries(1)[0]
        assert holds(invocation)
        assert not holds(delivery)

    def test_never_predicate(self):
        assert never(object()) is False


class TestAdversarialScheduler:
    def test_held_events_are_skipped(self):
        pending = deliveries(2, msg_type="read") + deliveries(1, msg_type="write")
        rule = DelayRule(name="hold-reads", holds=holds_message(msg_type="read"), until=never)
        scheduler = AdversarialScheduler(rules=[rule])
        choice = scheduler.choose(pending, FakeKernel())
        assert pending[choice].message.msg_type == "write"

    def test_rule_releases_when_condition_met(self):
        pending = deliveries(1, msg_type="read")
        kernel = FakeKernel()
        rule = DelayRule(name="hold", holds=holds_message(msg_type="read"), until=lambda k: True)
        scheduler = AdversarialScheduler(rules=[rule])
        assert scheduler.choose(pending, kernel) == 0

    def test_all_held_releases_oldest_by_default(self):
        pending = deliveries(2, msg_type="read")
        rule = DelayRule(name="hold", holds=holds_message(msg_type="read"), until=never)
        scheduler = AdversarialScheduler(rules=[rule])
        assert scheduler.choose(pending, FakeKernel()) == 0

    def test_all_held_raises_when_strict(self):
        pending = deliveries(2, msg_type="read")
        rule = DelayRule(name="hold", holds=holds_message(msg_type="read"), until=never)
        scheduler = AdversarialScheduler(rules=[rule], release_when_stuck=False)
        with pytest.raises(SchedulerError):
            scheduler.choose(pending, FakeKernel())

    def test_one_shot_rule_stays_released(self):
        fired = {"value": False}

        def until(kernel):
            return fired["value"]

        rule = DelayRule(name="once", holds=holds_message(msg_type="read"), until=until, one_shot=True)
        scheduler = AdversarialScheduler(rules=[rule])
        pending = deliveries(1, msg_type="read") + deliveries(1, msg_type="write")
        # Initially held -> write is chosen.
        assert pending[scheduler.choose(pending, FakeKernel())].message.msg_type == "write"
        fired["value"] = True
        scheduler.choose(pending, FakeKernel())
        fired["value"] = False  # condition goes false again, but the one-shot rule stays released
        assert rule.released
        assert pending[scheduler.choose(pending, FakeKernel())].message.msg_type == "read"

    def test_reset_rearms_rules_and_base(self):
        rule = DelayRule(name="once", holds=holds_message(msg_type="read"), until=lambda k: True, one_shot=True)
        scheduler = AdversarialScheduler(rules=[rule], base=RandomScheduler(seed=1))
        scheduler.choose(deliveries(1, msg_type="read"), FakeKernel())
        assert rule.released
        scheduler.reset()
        assert not rule.released

    def test_base_policy_applies_to_eligible_subset(self):
        pending = deliveries(3, msg_type="read") + deliveries(2, msg_type="write")
        rule = DelayRule(name="hold-reads", holds=holds_message(msg_type="read"), until=never)
        scheduler = AdversarialScheduler(rules=[rule], base=LIFOScheduler())
        choice = scheduler.choose(pending, FakeKernel())
        assert choice == 4  # newest among the eligible (write) events
