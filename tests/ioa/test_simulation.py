"""Unit tests for the simulation kernel: sessions, deliveries, well-formedness."""

from __future__ import annotations

import pytest

from repro.ioa import (
    ActionKind,
    Await,
    ClientAutomaton,
    FIFOScheduler,
    LIFOScheduler,
    LivenessError,
    RandomScheduler,
    Send,
    ServerAutomaton,
    Simulation,
    Topology,
    WellFormednessError,
    expect_type,
)
from repro.ioa.errors import DuplicateProcessError, UnknownProcessError


class EchoServer(ServerAutomaton):
    """Replies to ``ping`` with ``pong`` carrying the same payload."""

    def on_message(self, message, ctx):
        if message.msg_type == "ping":
            ctx.send(message.src, "pong", {"txn": message.get("txn"), "n": message.get("n")})


class DeferServer(ServerAutomaton):
    """Holds the first ping and only answers it when a ``release`` arrives."""

    def __init__(self, name):
        super().__init__(name)
        self.held = None

    def on_message(self, message, ctx):
        if message.msg_type == "ping":
            if self.held is None:
                self.held = message
            else:
                ctx.send(message.src, "pong", {"txn": message.get("txn")})
        elif message.msg_type == "release" and self.held is not None:
            ctx.send(self.held.src, "pong", {"txn": self.held.get("txn")})
            self.held = None


class PingClient(ClientAutomaton):
    """Sends one ping per listed server and waits for all pongs."""

    def __init__(self, name, servers):
        super().__init__(name)
        self.servers = tuple(servers)

    def run_transaction(self, txn, ctx):
        for index, server in enumerate(self.servers):
            yield Send(dst=server, msg_type="ping", payload={"txn": str(txn), "n": index})
        replies = yield Await(matcher=expect_type("pong"), count=len(self.servers))
        return tuple(sorted(reply.get("n") for reply in replies))


class TwoPhaseClient(ClientAutomaton):
    """Two sequential ping rounds to the same server (two Awaits)."""

    def __init__(self, name, server):
        super().__init__(name)
        self.server = server

    def run_transaction(self, txn, ctx):
        yield Send(dst=self.server, msg_type="ping", payload={"txn": str(txn), "n": 1})
        yield Await(matcher=expect_type("pong"), count=1)
        yield Send(dst=self.server, msg_type="ping", payload={"txn": str(txn), "n": 2})
        yield Await(matcher=expect_type("pong"), count=1)
        return "done"


def build_echo_system(num_servers=2, scheduler=None, client_cls=PingClient):
    simulation = Simulation(scheduler=scheduler or FIFOScheduler())
    servers = [f"s{i}" for i in range(1, num_servers + 1)]
    for server in servers:
        simulation.add_automaton(EchoServer(server))
    if client_cls is PingClient:
        simulation.add_automaton(PingClient("c1", servers))
    else:
        simulation.add_automaton(client_cls("c1", servers[0]))
    return simulation, servers


class TestSystemConstruction:
    def test_duplicate_names_rejected(self):
        simulation = Simulation()
        simulation.add_automaton(EchoServer("s1"))
        with pytest.raises(DuplicateProcessError):
            simulation.add_automaton(EchoServer("s1"))

    def test_unknown_client_rejected_on_submit(self):
        simulation, _ = build_echo_system()
        with pytest.raises(UnknownProcessError):
            simulation.submit("ghost", "T")

    def test_servers_and_clients_lists(self):
        simulation, servers = build_echo_system(num_servers=3)
        assert set(simulation.servers()) == set(servers)
        assert simulation.clients() == ("c1",)

    def test_submit_to_server_fails_at_invocation(self):
        simulation = Simulation()
        simulation.add_automaton(EchoServer("s1"))
        with pytest.raises(UnknownProcessError):
            simulation.submit("s1", "T1")


class TestExecution:
    def test_single_transaction_completes(self):
        simulation, _ = build_echo_system()
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        record = simulation.transaction_record(txn_id)
        assert record.complete
        assert record.result == (0, 1)

    def test_invoke_and_respond_actions_recorded(self):
        simulation, _ = build_echo_system()
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        kinds = [a.kind for a in simulation.trace.project("c1")]
        assert ActionKind.INVOKE in kinds
        assert ActionKind.RESPOND in kinds

    def test_trace_is_channel_consistent(self):
        simulation, _ = build_echo_system(num_servers=3)
        simulation.submit("c1", "T1")
        simulation.submit("c1", "T2")
        simulation.run_to_completion()
        simulation.trace.validate_channels()

    def test_round_counting_single_round(self):
        simulation, _ = build_echo_system()
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        assert simulation.transaction_record(txn_id).rounds == 1

    def test_round_counting_two_rounds(self):
        simulation, _ = build_echo_system(num_servers=1, client_cls=TwoPhaseClient)
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        assert simulation.transaction_record(txn_id).rounds == 2

    def test_messages_sent_counted(self):
        simulation, _ = build_echo_system(num_servers=3)
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        assert simulation.transaction_record(txn_id).messages_sent == 3

    def test_latency_steps_positive(self):
        simulation, _ = build_echo_system()
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        assert simulation.transaction_record(txn_id).latency_steps() > 0

    def test_deterministic_with_same_seed(self):
        def shape(action):
            message = action.message
            return (
                action.kind.value,
                action.actor,
                None if message is None else (message.msg_type, message.src, message.dst, message.items),
            )

        def run(seed):
            simulation, _ = build_echo_system(num_servers=3, scheduler=RandomScheduler(seed=seed))
            simulation.submit("c1", "T1")
            simulation.submit("c1", "T2")
            simulation.run_to_completion()
            return [shape(a) for a in simulation.trace]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_step_returns_false_when_idle(self):
        simulation, _ = build_echo_system()
        simulation.start()
        assert simulation.step() is False

    def test_run_respects_step_budget(self):
        simulation, _ = build_echo_system(num_servers=3)
        simulation.submit("c1", "T1")
        simulation.run(max_new_steps=2)
        assert len(simulation.incomplete_transactions()) == 1

    def test_max_steps_guard(self):
        simulation, _ = build_echo_system()
        simulation.max_steps = 1
        simulation.submit("c1", "T1")
        simulation.submit("c1", "T2")
        with pytest.raises(LivenessError):
            simulation.run()


class TestWellFormedness:
    def test_one_outstanding_transaction_per_client(self):
        simulation, _ = build_echo_system()
        simulation.submit("c1", "T1")
        simulation.submit("c1", "T2")
        simulation.run_to_completion()
        records = simulation.transaction_records()
        # The second transaction is invoked only after the first responded.
        assert records[0].respond_index < records[1].invoke_index

    def test_duplicate_txn_id_rejected(self):
        simulation, _ = build_echo_system()
        simulation.submit("c1", "T1", txn_id="same")
        with pytest.raises(WellFormednessError):
            simulation.submit("c1", "T2", txn_id="same")

    def test_after_dependency_orders_invocations(self):
        simulation = Simulation(scheduler=LIFOScheduler())
        simulation.add_automaton(EchoServer("s1"))
        simulation.add_automaton(PingClient("c1", ["s1"]))
        simulation.add_automaton(PingClient("c2", ["s1"]))
        first = simulation.submit("c1", "T1")
        second = simulation.submit("c2", "T2", after=[first])
        simulation.run_to_completion()
        first_record = simulation.transaction_record(first)
        second_record = simulation.transaction_record(second)
        assert first_record.respond_index < second_record.invoke_index

    def test_incomplete_transactions_raise_in_run_to_completion(self):
        simulation = Simulation()
        simulation.add_automaton(DeferServer("s1"))
        simulation.add_automaton(TwoPhaseClient("c1", "s1"))
        simulation.submit("c1", "T1")
        with pytest.raises(LivenessError):
            simulation.run_to_completion()


class TestTopologyEnforcement:
    def test_c2c_send_raises_when_disallowed(self):
        class ChattyClient(ClientAutomaton):
            def run_transaction(self, txn, ctx):
                yield Send(dst="c2", msg_type="gossip", payload={})
                return "sent"

        simulation = Simulation(topology=Topology(allow_client_to_client=False))
        simulation.add_automaton(ChattyClient("c1"))
        simulation.add_automaton(ChattyClient("c2"))
        simulation.add_automaton(EchoServer("s1"))
        simulation.submit("c1", "T1")
        from repro.ioa import CommunicationNotAllowedError

        with pytest.raises(CommunicationNotAllowedError):
            simulation.run()


class TestAnnotations:
    def test_annotate_transaction_stores_fields(self):
        class AnnotatingClient(ClientAutomaton):
            def run_transaction(self, txn, ctx):
                ctx.annotate_transaction(txn, tag=7, protocol="test")
                yield Send(dst="s1", msg_type="ping", payload={"txn": str(txn), "n": 0})
                yield Await(matcher=expect_type("pong"), count=1)
                return "ok"

        simulation = Simulation()
        simulation.add_automaton(EchoServer("s1"))
        simulation.add_automaton(AnnotatingClient("c1"))
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        record = simulation.transaction_record(txn_id)
        assert record.annotations["tag"] == 7
        assert record.annotations["protocol"] == "test"

    def test_accumulating_annotations(self):
        class AccumulatingClient(ClientAutomaton):
            def run_transaction(self, txn, ctx):
                ctx.annotate_transaction(txn, hops=1)
                ctx.annotate_transaction(txn, hops=2, _accumulate=True)
                yield Send(dst="s1", msg_type="ping", payload={"txn": str(txn), "n": 0})
                yield Await(matcher=expect_type("pong"), count=1)
                return "ok"

        simulation = Simulation()
        simulation.add_automaton(EchoServer("s1"))
        simulation.add_automaton(AccumulatingClient("c1"))
        txn_id = simulation.submit("c1", "T1")
        simulation.run_to_completion()
        assert simulation.transaction_record(txn_id).annotations["hops"] == 3
