"""Metamorphic tests for the incremental event frontier.

The kernel used to rebuild the scheduler's pending-event list from scratch
every step; it now maintains the list incrementally (indexed mailboxes, a
timer heap, dependency-triggered invocation readiness — see
:mod:`repro.ioa.frontier`).  The contract is *equivalence*: at every point of
any execution, the incremental frontier must present exactly the events — in
exactly the canonical order — that a from-scratch rebuild over the kernel's
ground-truth state would produce.

The main test here is a randomized interleaving driver: it interleaves every
operation that mutates the frontier (submit with ``after`` dependencies,
steps, timer arming, ``extract_deliveries``, mid-run add/remove of automata)
and re-derives the pending list independently after **every** operation.
The re-derivation deliberately does not consult the frontier's internals for
ripeness, readiness or ordering — only the raw views and the kernel's
queues/records — so any drift between the incremental index and the ground
truth fails loudly with the operation sequence that produced it.
"""

from __future__ import annotations

import random

import pytest

from repro.ioa import (
    Await,
    ClientAutomaton,
    FIFOScheduler,
    PendingDelivery,
    PendingInvocation,
    PendingTimeout,
    RandomScheduler,
    Send,
    ServerAutomaton,
    Simulation,
    expect_type,
)


class EchoServer(ServerAutomaton):
    def on_message(self, message, ctx):
        if message.msg_type == "ping":
            ctx.send(message.src, "pong", {"txn": message.get("txn")})


class GossipServer(ServerAutomaton):
    """A server whose timers send messages to whichever peers are alive.

    ``peers`` is a callable so the randomized driver can retire gossip
    servers mid-run: a firing timer only targets survivors.
    """

    def __init__(self, name, peers):
        super().__init__(name)
        self.peers = peers

    def on_timeout(self, info, ctx):
        for peer in self.peers(self.name):
            ctx.send(peer, "gossip", {"from": self.name})

    def on_message(self, message, ctx):
        pass  # gossip is absorbed


class PingClient(ClientAutomaton):
    def __init__(self, name, server):
        super().__init__(name)
        self.server = server

    def run_transaction(self, txn, ctx):
        yield Send(dst=self.server, msg_type="ping", payload={"txn": str(txn)})
        yield Await(matcher=expect_type("pong"), count=1)
        return "done"


def rebuild_pending(sim, client_order):
    """Independently re-derive the canonical pending-event list.

    This is the from-scratch poll the frontier replaced: all deliveries in
    enqueue order, then the armed timers that are ripe at ``now`` in arming
    order, then — for every client in registration order — the queue head
    whose ``after`` dependencies have all completed (an id with no record
    counts as satisfied) while no session is running at that client.
    """
    rows = []
    for delivery in sorted(sim.pending_deliveries(), key=lambda d: d.enqueued_at):
        rows.append(("deliver", delivery.enqueued_at))
    now = sim.now()
    for timeout in sorted(sim.pending_timeouts(), key=lambda t: t.enqueued_at):
        if timeout.ready_at <= now:
            rows.append(("timeout", timeout.enqueued_at))
    records = sim._records
    for client in client_order:
        queue = sim._client_queues.get(client)
        if not queue or client in sim._sessions:
            continue
        head = queue[0]
        if all(records[dep].complete for dep in head.after if dep in records):
            rows.append(("invoke", client, head.txn_id))
    return rows


def frontier_rows(sim):
    rows = []
    for event in sim.pending_events():
        if isinstance(event, PendingDelivery):
            rows.append(("deliver", event.enqueued_at))
        elif isinstance(event, PendingTimeout):
            rows.append(("timeout", event.enqueued_at))
        elif isinstance(event, PendingInvocation):
            rows.append(("invoke", event.client, event.txn_id))
        else:  # pragma: no cover - no fourth kind exists
            raise AssertionError(event)
    return rows


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 91])
def test_random_interleaving_matches_rebuild(seed):
    rng = random.Random(seed)
    sim = Simulation(scheduler=RandomScheduler(seed=seed))
    servers = ["s1", "s2"]
    clients = ["c1", "c2", "c3"]
    for server in servers:
        sim.add_automaton(EchoServer(server))
    gossip_alive = ["g1", "g2"]

    def live_peers(me):
        return [g for g in gossip_alive if g != me]

    for name in tuple(gossip_alive):
        sim.add_automaton(GossipServer(name, live_peers))
    client_order = []
    for client in clients:
        sim.add_automaton(PingClient(client, rng.choice(servers)))
        client_order.append(client)

    submitted = []  # every txn id ever submitted
    reserved = [f"X{i}" for i in range(8)]  # ids usable as future deps
    spare_counter = 0

    assert frontier_rows(sim) == rebuild_pending(sim, client_order)
    for _ in range(250):
        op = rng.randrange(8)
        if op <= 2:  # weighted towards stepping
            if sim.pending_events():
                sim.step()
        elif op == 3:  # submit, sometimes under a (possibly future) dep
            client = rng.choice(clients)
            after = ()
            if submitted and rng.random() < 0.5:
                after = (rng.choice(submitted),)
            elif reserved and rng.random() < 0.5:
                # Depend on an id that does not exist yet: trivially
                # satisfied now, re-blocked if the id is submitted later.
                after = (rng.choice(reserved),)
            if reserved and rng.random() < 0.3:
                txn_id = reserved.pop(rng.randrange(len(reserved)))
            else:
                txn_id = None
            submitted.append(
                sim.submit(client, f"t{len(submitted)}", txn_id=txn_id, after=after)
            )
        elif op == 4:  # arm a timer somewhere
            owner = rng.choice(servers + gossip_alive)
            sim.set_timeout(owner, rng.randrange(0, 6), {"kind": "test"})
        elif op == 5:  # pull matching messages back out of the network
            wanted = rng.choice(["ping", "pong", "gossip"])
            taken = sim.extract_deliveries(lambda d, w=wanted: d.message.msg_type == w)
            assert all(t.message.msg_type == wanted for t in taken)
        elif op == 6:  # spawn a gossip server mid-run
            if len(gossip_alive) < 4:
                spare_counter += 1
                name = f"g{2 + spare_counter}"
                sim.add_automaton(GossipServer(name, live_peers))
                gossip_alive.append(name)
        else:  # retire a gossip server mid-run (in-flight mail dies with it)
            if len(gossip_alive) > 1:
                name = gossip_alive.pop(rng.randrange(len(gossip_alive)))
                assert sim.remove_automaton(name, force=True)
        assert frontier_rows(sim) == rebuild_pending(sim, client_order)

    # Drain what remains; the equivalence must hold through completion too.
    guard = 0
    while sim.pending_events():
        sim.step()
        assert frontier_rows(sim) == rebuild_pending(sim, client_order)
        guard += 1
        assert guard < 10_000


class TestDependencyTriggeredReadiness:
    def test_unknown_dep_is_satisfied_until_submitted(self):
        """The dep-revocation edge: a head waiting on a not-yet-submitted id
        is ready; submitting that id re-blocks it until the dep completes."""
        sim = Simulation(scheduler=FIFOScheduler())
        sim.add_automaton(EchoServer("s1"))
        sim.add_automaton(PingClient("c1", "s1"))
        sim.add_automaton(PingClient("c2", "s1"))
        sim.submit("c2", "late", txn_id="T-late", after=("T-first",))
        assert [e.client for e in sim.pending_events()] == ["c2"]
        sim.submit("c1", "first", txn_id="T-first")
        # The previously satisfied dependency is now a real, incomplete
        # record: c2's head must have been re-blocked.
        invocations = [e for e in sim.pending_events() if isinstance(e, PendingInvocation)]
        assert [e.client for e in invocations] == ["c1"]
        sim.run_to_completion()
        record = sim.transaction_record("T-late")
        dep = sim.transaction_record("T-first")
        assert record.complete and dep.complete
        assert dep.respond_index < record.invoke_index

    def test_head_not_ready_while_session_runs(self):
        sim = Simulation(scheduler=FIFOScheduler())
        sim.add_automaton(EchoServer("s1"))
        sim.add_automaton(PingClient("c1", "s1"))
        sim.submit("c1", "a", txn_id="A")
        sim.submit("c1", "b", txn_id="B")
        sim.step()  # invoke A: its session now awaits the pong
        invocations = [e for e in sim.pending_events() if isinstance(e, PendingInvocation)]
        assert invocations == []
        sim.run_to_completion()
        assert sim.transaction_record("B").complete


class TestTimerFrontier:
    def test_idle_fast_forward_fires_far_timer(self):
        sim = Simulation(scheduler=FIFOScheduler())
        fired = []

        class TimerServer(ServerAutomaton):
            def on_timeout(self, info, ctx):
                fired.append(dict(info))

        sim.add_automaton(TimerServer("t1"))
        sim.set_timeout("t1", 100, {"kind": "far"})
        assert sim.pending_events() == []  # not ripe yet
        assert sim.next_timeout_boundary() is not None
        assert sim.step()  # idle fast-forward makes it ripe, then fires it
        assert fired == [{"kind": "far"}]
        assert sim.next_timeout_boundary() is None

    def test_remove_automaton_drops_owned_timers(self):
        sim = Simulation(scheduler=FIFOScheduler())

        class TimerServer(ServerAutomaton):
            def on_timeout(self, info, ctx):  # pragma: no cover - never fires
                raise AssertionError("timer of a retired automaton fired")

        sim.add_automaton(TimerServer("t1"))
        sim.add_automaton(EchoServer("s1"))
        sim.set_timeout("t1", 3, {"kind": "doomed"})
        sim.set_timeout("s1", 4, {"kind": "kept"})
        assert sim.remove_automaton("t1")
        assert [t.owner for t in sim.pending_timeouts()] == ["s1"]
        assert sim.next_timeout_boundary() == 4


class TestExtraction:
    def test_extract_evaluates_predicate_once_per_delivery(self):
        sim = Simulation(scheduler=FIFOScheduler())
        sim.add_automaton(EchoServer("s1"))
        sim.add_automaton(EchoServer("s2"))
        sim.add_automaton(PingClient("c1", "s1"))
        sim.add_automaton(PingClient("c2", "s2"))
        sim.submit("c1", "a")
        sim.submit("c2", "b")
        sim.step()
        sim.step()  # both pings are now in flight
        seen = []

        def predicate(delivery):
            seen.append(delivery.message.msg_id)
            return delivery.message.dst == "s1"

        before = sim.pending_deliveries()
        taken = sim.extract_deliveries(predicate)
        assert len(seen) == len(set(seen)) == len(before)
        assert [d.message.dst for d in taken] == ["s1"]
        assert [d.message.dst for d in sim.pending_deliveries()] == ["s2"]

    def test_delivery_boundary_tracks_earliest(self):
        sim = Simulation(scheduler=FIFOScheduler())
        sim.add_automaton(EchoServer("s1"))
        sim.add_automaton(PingClient("c1", "s1"))
        assert sim.next_delivery_boundary() is None
        sim.submit("c1", "a")
        sim.step()
        assert sim.next_delivery_boundary() == 0  # reliable path: ripe now
