"""Unit tests for the communication topology and system settings."""

from __future__ import annotations

import pytest

from repro.ioa.automaton import ReaderAutomaton, ServerAutomaton, WriterAutomaton
from repro.ioa.errors import CommunicationNotAllowedError, UnknownProcessError
from repro.ioa.network import SystemSetting, Topology, standard_settings


def make_topology(allow_c2c: bool = True, allow_s2s: bool = True) -> Topology:
    topology = Topology(allow_client_to_client=allow_c2c, allow_server_to_server=allow_s2s)
    topology.register(ReaderAutomaton("r1"))
    topology.register(WriterAutomaton("w1"))
    topology.register(ServerAutomaton("sx"))
    topology.register(ServerAutomaton("sy"))
    return topology


class TestTopology:
    def test_client_to_server_always_allowed(self):
        topology = make_topology(allow_c2c=False)
        topology.check_send("r1", "sx")
        topology.check_send("w1", "sy")

    def test_server_to_client_always_allowed(self):
        topology = make_topology(allow_c2c=False)
        topology.check_send("sx", "r1")

    def test_client_to_client_allowed_when_enabled(self):
        topology = make_topology(allow_c2c=True)
        topology.check_send("w1", "r1")

    def test_client_to_client_rejected_when_disabled(self):
        topology = make_topology(allow_c2c=False)
        with pytest.raises(CommunicationNotAllowedError):
            topology.check_send("w1", "r1")

    def test_server_to_server_toggle(self):
        topology = make_topology(allow_s2s=False)
        with pytest.raises(CommunicationNotAllowedError):
            topology.check_send("sx", "sy")
        allowed = make_topology(allow_s2s=True)
        allowed.check_send("sx", "sy")

    def test_self_send_rejected(self):
        topology = make_topology()
        with pytest.raises(CommunicationNotAllowedError):
            topology.check_send("sx", "sx")

    def test_unknown_process_rejected(self):
        topology = make_topology()
        with pytest.raises(UnknownProcessError):
            topology.check_send("r1", "nowhere")
        with pytest.raises(UnknownProcessError):
            topology.check_send("nowhere", "r1")

    def test_extra_forbidden_pairs(self):
        topology = Topology(extra_forbidden=frozenset({("r1", "sx")}))
        topology.register(ReaderAutomaton("r1"))
        topology.register(ServerAutomaton("sx"))
        with pytest.raises(CommunicationNotAllowedError):
            topology.check_send("r1", "sx")

    def test_allows_boolean_form(self):
        topology = make_topology(allow_c2c=False)
        assert topology.allows("r1", "sx")
        assert not topology.allows("w1", "r1")

    def test_kind_queries(self):
        topology = make_topology()
        assert topology.is_client("r1")
        assert topology.is_client("w1")
        assert topology.is_server("sx")
        assert not topology.is_server("r1")

    def test_describe_mentions_c2c(self):
        assert "disallowed" in make_topology(allow_c2c=False).describe()
        assert "allowed" in make_topology(allow_c2c=True).describe()


class TestSystemSetting:
    def test_mwsr_detection(self):
        setting = SystemSetting("mwsr", num_readers=1, num_writers=3, num_servers=2, c2c=True)
        assert setting.is_mwsr()
        assert not setting.is_swmr()

    def test_swmr_detection(self):
        setting = SystemSetting("swmr", num_readers=2, num_writers=1, num_servers=2, c2c=False)
        assert setting.is_swmr()
        assert not setting.is_mwsr()

    def test_client_count(self):
        setting = SystemSetting("x", num_readers=2, num_writers=3, num_servers=2, c2c=False)
        assert setting.num_clients == 5

    def test_standard_settings_cover_figure_1a(self):
        settings = standard_settings()
        assert len(settings) == 6
        names = {s.name for s in settings}
        assert "two-clients-c2c" in names
        assert "mwsr-no-c2c" in names
        assert "three-clients-no-c2c" in names
        # Both C2C values appear for every family.
        assert sum(1 for s in settings if s.c2c) == 3

    def test_standard_settings_population(self):
        for setting in standard_settings():
            if setting.name.startswith("two-clients"):
                assert setting.num_clients == 2
            if setting.name.startswith("three-clients"):
                assert setting.num_readers == 2 and setting.num_writers == 1
            if setting.name.startswith("mwsr"):
                assert setting.num_readers == 1 and setting.num_writers > 1
