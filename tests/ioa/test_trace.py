"""Unit tests for traces, projections, fragments and indistinguishability."""

from __future__ import annotations

import pytest

from repro.ioa.actions import ActionKind, Message, internal_action, recv_action, send_action
from repro.ioa.errors import TraceError
from repro.ioa.trace import Fragment, Trace, concat_fragments, reindex


def sample_trace():
    """r1 sends m to sx, sx replies with v; plus an internal step at sx."""
    trace = Trace()
    request = Message.make("read", "r1", "sx", {"txn": "R1"})
    reply = Message.make("reply", "sx", "r1", {"txn": "R1", "value": 7})
    trace.append(send_action(request))
    trace.append(recv_action(request))
    trace.append(internal_action("sx", {"step": "lookup"}))
    trace.append(send_action(reply))
    trace.append(recv_action(reply))
    return trace, request, reply


class TestTraceBasics:
    def test_append_assigns_consecutive_indices(self):
        trace, *_ = sample_trace()
        assert [a.index for a in trace] == list(range(len(trace)))

    def test_len_and_getitem(self):
        trace, *_ = sample_trace()
        assert len(trace) == 5
        assert trace[0].kind == ActionKind.SEND

    def test_project_filters_by_actor(self):
        trace, *_ = sample_trace()
        at_sx = trace.project("sx")
        assert all(a.actor == "sx" for a in at_sx)
        assert len(at_sx) == 3

    def test_external_excludes_internal(self):
        trace, *_ = sample_trace()
        assert all(a.kind != ActionKind.INTERNAL for a in trace.external())

    def test_actors_in_order_of_appearance(self):
        trace, *_ = sample_trace()
        assert trace.actors() == ("r1", "sx")

    def test_of_kind(self):
        trace, *_ = sample_trace()
        assert len(trace.of_kind(ActionKind.SEND)) == 2

    def test_copy_is_independent(self):
        trace, *_ = sample_trace()
        duplicate = trace.copy()
        duplicate.append(internal_action("r1"))
        assert len(duplicate) == len(trace) + 1


class TestTraceQueries:
    def test_find_send_and_recv_match_by_msg_id(self):
        trace, request, reply = sample_trace()
        assert trace.find_send(request).index == 0
        assert trace.find_recv(request).index == 1
        assert trace.find_send(reply).index == 3

    def test_between_excludes_endpoints(self):
        trace, *_ = sample_trace()
        middle = trace.between(0, 4)
        assert [a.index for a in middle] == [1, 2, 3]

    def test_between_rejects_reversed_range(self):
        trace, *_ = sample_trace()
        with pytest.raises(TraceError):
            trace.between(4, 0)

    def test_prefix_matches_paper_notation(self):
        trace, request, _ = sample_trace()
        recv = trace.find_recv(request)
        prefix = trace.prefix(recv)
        assert len(prefix) == recv.index + 1

    def test_prefix_rejects_foreign_action(self):
        trace, *_ = sample_trace()
        foreign = internal_action("zz").with_index(2)
        with pytest.raises(TraceError):
            trace.prefix(foreign)

    def test_suffix_after(self):
        trace, request, _ = sample_trace()
        recv = trace.find_recv(request)
        assert [a.index for a in trace.suffix_after(recv)] == [2, 3, 4]


class TestChannelValidation:
    def test_valid_trace_passes(self):
        trace, *_ = sample_trace()
        trace.validate_channels()

    def test_recv_before_send_rejected(self):
        trace = Trace()
        message = Message.make("m", "a", "b", {})
        trace.append(recv_action(message))
        trace.append(send_action(message))
        with pytest.raises(TraceError):
            trace.validate_channels()

    def test_duplicate_delivery_rejected(self):
        trace = Trace()
        message = Message.make("m", "a", "b", {})
        trace.append(send_action(message))
        trace.append(recv_action(message))
        trace.append(recv_action(message))
        with pytest.raises(TraceError):
            trace.validate_channels()

    def test_duplicate_send_rejected(self):
        trace = Trace()
        message = Message.make("m", "a", "b", {})
        trace.append(send_action(message))
        trace.append(send_action(message))
        with pytest.raises(TraceError):
            trace.validate_channels()

    def test_undelivered_messages_reported(self):
        trace = Trace()
        message = Message.make("m", "a", "b", {})
        trace.append(send_action(message))
        assert [m.msg_id for m in trace.undelivered_messages()] == [message.msg_id]


class TestIndistinguishability:
    def test_identical_projections_are_indistinguishable(self):
        first, *_ = sample_trace()
        second = Trace()
        # Same steps at sx, different interleaving with a new actor elsewhere.
        for action in first:
            second.append(action)
        second.append(internal_action("r2"))
        assert first.indistinguishable_at(second, "sx")
        assert not first.indistinguishable_at(second, "r2")

    def test_different_projections_are_distinguishable(self):
        first, *_ = sample_trace()
        second = Trace(list(first)[:-1])
        assert not first.indistinguishable_at(second, "r1")


class TestFragment:
    def test_single_actor_detection(self):
        trace, *_ = sample_trace()
        fragment = Fragment(actions=trace.project("sx"), label="F")
        assert fragment.single_actor() == "sx"

    def test_mixed_actor_detection(self):
        trace, *_ = sample_trace()
        fragment = Fragment(actions=trace.actions, label="all")
        assert fragment.single_actor() is None
        assert set(fragment.actors()) == {"r1", "sx"}

    def test_input_and_external_flags(self):
        trace, *_ = sample_trace()
        server_fragment = Fragment(actions=trace.project("sx"), label="F")
        assert server_fragment.has_input_actions()
        assert server_fragment.has_external_actions()
        internal_only = Fragment(actions=(internal_action("sx").with_index(0),), label="int")
        assert not internal_only.has_input_actions()
        assert not internal_only.has_external_actions()

    def test_same_steps(self):
        trace, *_ = sample_trace()
        first = Fragment(actions=trace.project("sx"), label="a")
        second = Fragment(actions=trace.project("sx"), label="b")
        assert first.same_steps(second)

    def test_empty_fragment_start_index_raises(self):
        with pytest.raises(TraceError):
            Fragment(actions=(), label="empty").start_index

    def test_concat_and_reindex(self):
        trace, *_ = sample_trace()
        first = Fragment(actions=trace.project("r1"), label="a")
        second = Fragment(actions=trace.project("sx"), label="b")
        combined = concat_fragments([first, second])
        assert len(combined) == len(trace)
        stamped = reindex(combined)
        assert [a.index for a in stamped] == list(range(len(stamped)))
