"""Unit tests for automaton base classes, effects and matchers."""

from __future__ import annotations

import pytest

from repro.ioa.actions import Message
from repro.ioa.automaton import (
    Automaton,
    Await,
    ClientAutomaton,
    Mark,
    ReaderAutomaton,
    Send,
    ServerAutomaton,
    SessionState,
    WriterAutomaton,
    expect_type,
    expect_types,
)
from repro.ioa.errors import SessionError


class TestKinds:
    def test_server_kind(self):
        server = ServerAutomaton("sx")
        assert server.is_server()
        assert not server.is_client()
        assert server.kind == "server"

    def test_reader_and_writer_kinds(self):
        assert ReaderAutomaton("r1").kind == "reader"
        assert WriterAutomaton("w1").kind == "writer"
        assert ReaderAutomaton("r1").is_client()
        assert WriterAutomaton("w1").is_client()

    def test_generic_process_is_neither(self):
        process = Automaton("p")
        assert not process.is_server()
        assert not process.is_client()

    def test_client_automaton_requires_run_transaction(self):
        client = ClientAutomaton("c")
        with pytest.raises(NotImplementedError):
            client.run_transaction("T", None)

    def test_unmatched_goes_to_handler_default(self):
        assert ClientAutomaton("c").unmatched_goes_to_handler() is True


class TestEffects:
    def test_send_defaults(self):
        effect = Send(dst="sx", msg_type="ping")
        assert effect.payload == {}
        assert effect.phase == ""

    def test_await_requires_positive_count(self):
        with pytest.raises(SessionError):
            Await(matcher=lambda m: True, count=0)

    def test_await_defaults(self):
        effect = Await(matcher=lambda m: True)
        assert effect.count == 1
        assert effect.counts_as_round is True

    def test_mark_defaults(self):
        assert dict(Mark().info) == {}


class TestMatchers:
    def test_expect_type_matches_type(self):
        matcher = expect_type("pong")
        assert matcher(Message.make("pong", "sx", "c", {}))
        assert not matcher(Message.make("ping", "sx", "c", {}))

    def test_expect_type_with_sender(self):
        matcher = expect_type("pong", frm="sx")
        assert matcher(Message.make("pong", "sx", "c", {}))
        assert not matcher(Message.make("pong", "sy", "c", {}))

    def test_expect_types(self):
        matcher = expect_types("a", "b")
        assert matcher(Message.make("a", "x", "y", {}))
        assert matcher(Message.make("b", "x", "y", {}))
        assert not matcher(Message.make("c", "x", "y", {}))


class TestSessionState:
    def test_matches_requires_pending_await(self):
        session = SessionState(txn="T", txn_id="T", client="c", generator=iter(()))
        assert not session.matches(Message.make("pong", "s", "c", {}))

    def test_ready_when_enough_collected(self):
        session = SessionState(txn="T", txn_id="T", client="c", generator=iter(()))
        session.pending_await = Await(matcher=expect_type("pong"), count=2)
        assert not session.ready()
        session.collected.append(Message.make("pong", "s", "c", {}))
        assert not session.ready()
        session.collected.append(Message.make("pong", "s", "c", {}))
        assert session.ready()

    def test_matches_uses_matcher(self):
        session = SessionState(txn="T", txn_id="T", client="c", generator=iter(()))
        session.pending_await = Await(matcher=expect_type("pong"), count=1)
        assert session.matches(Message.make("pong", "s", "c", {}))
        assert not session.matches(Message.make("ping", "s", "c", {}))
