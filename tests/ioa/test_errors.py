"""Tests for the error hierarchy: every error type is raised where promised."""

from __future__ import annotations

import pytest

from repro.ioa import errors


class TestHierarchy:
    def test_all_errors_are_simulation_errors(self):
        for name in (
            "UnknownProcessError",
            "DuplicateProcessError",
            "CommunicationNotAllowedError",
            "WellFormednessError",
            "SchedulerError",
            "SessionError",
            "LivenessError",
            "TraceError",
        ):
            error_type = getattr(errors, name)
            assert issubclass(error_type, errors.SimulationError)

    def test_unknown_process_error_carries_name(self):
        error = errors.UnknownProcessError("ghost")
        assert error.name == "ghost"
        assert "ghost" in str(error)

    def test_duplicate_process_error_carries_name(self):
        error = errors.DuplicateProcessError("sx")
        assert error.name == "sx"

    def test_communication_error_carries_endpoints_and_reason(self):
        error = errors.CommunicationNotAllowedError("w1", "r1", "no C2C")
        assert error.src == "w1" and error.dst == "r1"
        assert "no C2C" in str(error)

    def test_communication_error_without_reason(self):
        error = errors.CommunicationNotAllowedError("a", "b")
        assert str(error).endswith("not allowed")


class TestErrorsInContext:
    def test_simulation_error_catches_everything(self):
        from repro.ioa import Simulation, Topology
        from repro.ioa.automaton import ServerAutomaton

        simulation = Simulation(topology=Topology(allow_client_to_client=False))
        simulation.add_automaton(ServerAutomaton("sx"))
        with pytest.raises(errors.SimulationError):
            simulation.submit("nope", "T1")

    def test_session_error_for_bad_effect(self):
        from repro.ioa import ClientAutomaton, Simulation
        from repro.ioa.automaton import ServerAutomaton

        class BadClient(ClientAutomaton):
            def run_transaction(self, txn, ctx):
                yield "this is not an effect"
                return None

        simulation = Simulation()
        simulation.add_automaton(ServerAutomaton("sx"))
        simulation.add_automaton(BadClient("c1"))
        simulation.submit("c1", "T1")
        with pytest.raises(errors.SessionError):
            simulation.run()
