"""Unit tests for messages and actions."""

from __future__ import annotations

import pytest

from repro.ioa.actions import (
    Action,
    ActionKind,
    Message,
    actions_at,
    internal_action,
    invoke_action,
    recv_action,
    respond_action,
    send_action,
)


class TestMessage:
    def test_make_freezes_payload(self):
        message = Message.make("read-val", "r1", "sx", {"txn": "R1", "key": 3})
        assert message.get("txn") == "R1"
        assert message.get("key") == 3

    def test_payload_is_readonly_mapping(self):
        message = Message.make("read-val", "r1", "sx", {"txn": "R1"})
        with pytest.raises(TypeError):
            message.payload["txn"] = "R2"  # type: ignore[index]

    def test_get_returns_default_for_missing_key(self):
        message = Message.make("read-val", "r1", "sx", {})
        assert message.get("missing", 42) == 42

    def test_msg_ids_are_unique(self):
        first = Message.make("a", "x", "y", {})
        second = Message.make("a", "x", "y", {})
        assert first.msg_id != second.msg_id

    def test_with_payload_creates_new_message(self):
        message = Message.make("read-val", "r1", "sx", {"txn": "R1"})
        updated = message.with_payload(extra=1)
        assert updated.get("extra") == 1
        assert updated.get("txn") == "R1"
        assert updated.msg_id != message.msg_id

    def test_list_payload_values_are_frozen_to_tuples(self):
        message = Message.make("m", "a", "b", {"items": [1, 2, 3]})
        assert message.get("items") == (1, 2, 3)

    def test_dict_payload_values_are_frozen(self):
        message = Message.make("m", "a", "b", {"mapping": {"k": 1}})
        assert message.get("mapping") == (("k", 1),)

    def test_set_payload_values_become_frozensets(self):
        message = Message.make("m", "a", "b", {"objects": {"ox", "oy"}})
        assert message.get("objects") == frozenset({"ox", "oy"})

    def test_messages_are_hashable(self):
        message = Message.make("m", "a", "b", {"n": 1})
        assert message in {message}

    def test_describe_mentions_endpoints(self):
        message = Message.make("read-val", "r1", "sx", {})
        assert "r1" in message.describe()
        assert "sx" in message.describe()
        assert "read-val" in message.describe()


class TestActionKind:
    def test_external_kinds(self):
        assert ActionKind.SEND.is_external()
        assert ActionKind.RECV.is_external()
        assert ActionKind.INVOKE.is_external()
        assert ActionKind.RESPOND.is_external()
        assert not ActionKind.INTERNAL.is_external()
        assert not ActionKind.START.is_external()

    def test_input_kinds(self):
        assert ActionKind.RECV.is_input()
        assert ActionKind.INVOKE.is_input()
        assert not ActionKind.SEND.is_input()

    def test_output_kinds(self):
        assert ActionKind.SEND.is_output()
        assert ActionKind.RESPOND.is_output()
        assert not ActionKind.RECV.is_output()


class TestAction:
    def test_send_action_occurs_at_sender(self):
        message = Message.make("m", "r1", "sx", {})
        action = send_action(message)
        assert action.actor == "r1"
        assert action.kind == ActionKind.SEND

    def test_recv_action_occurs_at_receiver(self):
        message = Message.make("m", "r1", "sx", {})
        action = recv_action(message)
        assert action.actor == "sx"
        assert action.kind == ActionKind.RECV

    def test_invoke_and_respond_helpers(self):
        assert invoke_action("r1", {"txn": "R1"}).kind == ActionKind.INVOKE
        assert respond_action("r1", {"txn": "R1"}).kind == ActionKind.RESPOND
        assert internal_action("sx").kind == ActionKind.INTERNAL

    def test_get_prefers_info_over_payload(self):
        message = Message.make("m", "r1", "sx", {"txn": "payload"})
        action = Action.make(ActionKind.RECV, "sx", message, {"txn": "info"})
        assert action.get("txn") == "info"

    def test_get_falls_back_to_payload(self):
        message = Message.make("m", "r1", "sx", {"txn": "payload"})
        action = Action.make(ActionKind.RECV, "sx", message)
        assert action.get("txn") == "payload"

    def test_same_step_ignores_index(self):
        message = Message.make("m", "r1", "sx", {})
        first = send_action(message).with_index(3)
        second = send_action(message).with_index(9)
        assert first.same_step(second)

    def test_same_step_detects_different_actor(self):
        a = internal_action("sx", {"n": 1})
        b = internal_action("sy", {"n": 1})
        assert not a.same_step(b)

    def test_actions_at_filters_by_actor(self):
        actions = [internal_action("a"), internal_action("b"), internal_action("a")]
        assert len(actions_at(actions, "a")) == 2
        assert len(actions_at(actions, "c")) == 0

    def test_with_index_round_trip(self):
        action = internal_action("sx")
        assert action.with_index(5).index == 5
