"""End-to-end integration tests: the whole pipeline from workload to verdicts.

These tests exercise the stack the way the benchmark harness and the examples
do — protocol registry → build → workload generation → simulation →
history/trace → property checkers → analysis tables — and pin the headline
results of the paper:

* the Figure 1(a) boundary (algorithm A verified in the possible cells, the
  naive candidate broken in the impossible ones);
* the Figure 1(b) matrix shape (1 round/1 version for A, 2/1 for B, 1/|W| for
  C, unbounded/1 for the retry baseline);
* the Eiger correction of Section 6;
* the latency-comparison shape (A matches simple reads; B, locking and the
  retry baseline pay latency in different currencies).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentConfig,
    WorkloadSpec,
    compare_protocols,
    format_latency_comparison,
    run_experiment,
)
from repro.core.feasibility import bounded_snw_matrix, check_setting, paper_expectation
from repro.ioa.network import SystemSetting, standard_settings
from repro.proofs import c2c_breaks_the_chain, replay_theorem1, replay_theorem2, run_figure5


class TestFigure1aBoundary:
    def test_possible_cells_verified_with_algorithm_a(self):
        for name, readers, writers in (("two-clients-c2c", 1, 1), ("mwsr-c2c", 1, 3)):
            setting = SystemSetting(name, num_readers=readers, num_writers=writers, num_servers=2, c2c=True)
            verdict = check_setting(setting, schedules=3)
            assert verdict.snow_possible
            assert verdict.method == "verified-protocol"

    def test_impossible_cells_witnessed_by_naive_candidate(self):
        for name, readers, writers, c2c in (
            ("two-clients-no-c2c", 1, 1, False),
            ("three-clients-c2c", 2, 1, True),
        ):
            setting = SystemSetting(name, num_readers=readers, num_writers=writers, num_servers=2, c2c=c2c)
            verdict = check_setting(setting, schedules=25)
            assert not verdict.snow_possible
            assert verdict.method in ("targeted-adversary", "randomized-search")

    def test_expectations_match_figure_1a(self):
        expected = {
            "two-clients-c2c": True,
            "two-clients-no-c2c": False,
            "mwsr-c2c": True,
            "mwsr-no-c2c": False,
            "three-clients-c2c": False,
            "three-clients-no-c2c": False,
        }
        for setting in standard_settings():
            assert paper_expectation(setting)[0] == expected[setting.name]


class TestFigure1bMatrix:
    def test_measured_matrix_matches_paper_shape(self):
        rows = {row.protocol: row for row in bounded_snw_matrix(num_writers=2, num_objects=2, workload_rounds=2, seeds=(0, 1))}
        assert rows["algorithm-a"].rounds_observed == 1 and rows["algorithm-a"].versions_observed == 1
        assert rows["algorithm-b"].rounds_observed == 2 and rows["algorithm-b"].versions_observed == 1
        assert rows["algorithm-c"].versions_observed >= 2
        assert rows["occ-double-collect"].rounds_observed >= 2
        assert all(row.satisfies_snw for row in rows.values())


class TestImpossibilityReplays:
    def test_theorem1_and_theorem2_replays_reach_contradictions(self):
        assert replay_theorem1().ok
        assert replay_theorem2().ok

    def test_c2c_is_exactly_what_blocks_theorem2(self):
        blocked, _ = c2c_breaks_the_chain()
        assert blocked


class TestEigerCorrection:
    def test_figure5_end_to_end(self):
        result = run_figure5()
        assert result.anomaly_reproduced
        assert result.snow_report.non_blocking
        assert not result.snow_report.strict_serializable


class TestLatencyComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_protocols(
            ["simple-rw", "algorithm-a", "algorithm-b", "algorithm-c", "s2pl", "occ-double-collect"],
            workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=3, read_size=2, write_size=2, seed=7),
            num_readers=2,
            num_writers=2,
            num_objects=2,
            scheduler="random",
            seed=7,
        )

    def test_algorithm_a_matches_simple_read_rounds(self, results):
        by_name = {r.protocol: r for r in results}
        assert by_name["algorithm-a"].metrics.max_read_rounds() == by_name["simple-rw"].metrics.max_read_rounds() == 1

    def test_algorithm_b_pays_exactly_one_extra_round(self, results):
        by_name = {r.protocol: r for r in results}
        assert by_name["algorithm-b"].metrics.max_read_rounds() == 2

    def test_retry_baseline_has_the_worst_tail(self, results):
        by_name = {r.protocol: r for r in results}
        assert (
            by_name["occ-double-collect"].metrics.max_read_rounds()
            >= by_name["algorithm-b"].metrics.max_read_rounds()
        )

    def test_only_weak_protocols_lose_s(self, results):
        for result in results:
            if result.protocol in ("simple-rw",):
                continue
            assert result.snow.strict_serializable, result.protocol

    def test_table_renders(self, results):
        table = format_latency_comparison(results)
        assert "simple-rw" in table and "occ-double-collect" in table


class TestRunnerRoundTrip:
    def test_single_experiment_round_trip(self):
        result = run_experiment(
            ExperimentConfig(
                protocol="algorithm-c",
                num_readers=2,
                num_writers=2,
                num_objects=3,
                workload=WorkloadSpec(reads_per_reader=3, writes_per_writer=2, seed=11),
                scheduler="random",
                seed=11,
            )
        )
        assert result.snow.satisfies_snw
        assert result.metrics.total_messages > 0
        assert len(result.history) == len(result.read_ids) + len(result.write_ids)
