"""Adversarial-schedule integration tests.

The impossibility proofs give the network adversary a specific power: deliver
a READ's requests on either side of a concurrent WRITE's installs.  These
tests wield that power explicitly (via DelayRule adversaries) against every
protocol and check that exactly the protocols the paper says are safe remain
safe — and that the ones that are not, fail in exactly the predicted way.
"""

from __future__ import annotations

import pytest

from repro.ioa import (
    AdversarialScheduler,
    DelayRule,
    holds_message,
    until_message_delivered,
    until_transaction_done,
)
from repro.protocols import get_protocol


def build_with_fracture_adversary(protocol_name: str):
    """One writer, one reader, two shards, and the fracture adversary of §3.

    The adversary delays the READ's request to ``sx`` until a write-install has
    been applied there, and delays the WRITE's install at ``sy`` until the READ
    has completed.
    """
    protocol = get_protocol(protocol_name)
    handle = protocol.build(num_readers=1, num_writers=1, num_objects=2)
    write_id = handle.submit_write({"ox": "new", "oy": "new"}, writer=handle.writers[0])
    read_id = handle.submit_read(["ox", "oy"], reader=handle.readers[0])
    install_types = ("write-val", "install", "eiger-write", "commit-write")
    rules = [
        DelayRule(
            name="read-at-sx-after-write-installed",
            holds=holds_message(dst="sx", predicate=lambda m: m.get("txn") == read_id),
            until=lambda kernel: any(
                until_message_delivered(msg_type, dst="sx")(kernel) for msg_type in install_types
            ),
        ),
        DelayRule(
            name="write-install-at-sy-after-read-done",
            holds=holds_message(
                dst="sy",
                predicate=lambda m: m.get("txn") == write_id and m.msg_type in install_types,
            ),
            until=until_transaction_done(read_id),
        ),
    ]
    handle.simulation.scheduler = AdversarialScheduler(rules=rules)
    return handle, read_id, write_id


class TestFractureAdversary:
    def test_naive_candidate_is_fractured(self):
        handle, read_id, _ = build_with_fracture_adversary("naive-snow")
        handle.run_to_completion()
        result = handle.simulation.transaction_record(read_id).result.as_dict
        assert result == {"ox": "new", "oy": 0}
        assert not handle.serializability().ok

    @pytest.mark.parametrize("protocol", ["algorithm-a", "algorithm-b", "algorithm-c", "s2pl"])
    def test_strong_protocols_survive_the_same_adversary(self, protocol):
        handle, read_id, _ = build_with_fracture_adversary(protocol)
        handle.run_to_completion()
        assert handle.serializability().ok, handle.serializability().describe()
        # Whatever the read returned, it is all-old or all-new, never mixed.
        result = handle.simulation.transaction_record(read_id).result.as_dict
        assert result in ({"ox": 0, "oy": 0}, {"ox": "new", "oy": "new"})

    def test_retry_baseline_pays_with_unbounded_rounds_not_with_safety(self):
        """The fracture adversary keeps the WRITE half-installed until the READ
        finishes, so the validating retry baseline can never accept a snapshot:
        it burns through its retry budget instead of returning a fractured
        result.  This is the executable meaning of the (1 version, ∞ rounds)
        cell — safety is preserved, termination is what is given up."""
        from repro.ioa.errors import SimulationError

        handle, _read_id, _ = build_with_fracture_adversary("occ-double-collect")
        with pytest.raises(SimulationError, match="never quiesced"):
            handle.run_to_completion()

    def test_eiger_under_this_particular_adversary_completes(self):
        """This simple fracture schedule alone does not break Eiger (its round-2
        catch-up repairs it); the Figure 5 schedule with a second writer does —
        see tests/proofs/test_impossibility_replays.py."""
        handle, read_id, _ = build_with_fracture_adversary("eiger")
        handle.run_to_completion()
        assert handle.simulation.transaction_record(read_id).complete


class TestHeldWriteNeverBlocksReads:
    @pytest.mark.parametrize("protocol", ["algorithm-a", "algorithm-b", "algorithm-c"])
    def test_read_completes_while_a_write_is_stalled_forever(self, protocol):
        """N in action: a WRITE stuck in its install phase cannot delay a READ.

        The adversary holds one of the WRITE's install messages until the READ
        has completed; the non-blocking algorithms must let the READ finish
        (returning the pre-write snapshot) rather than wait.
        """
        proto = get_protocol(protocol)
        handle = proto.build(num_readers=1, num_writers=1, num_objects=2)
        write_id = handle.submit_write({"ox": "w", "oy": "w"}, writer=handle.writers[0])
        read_id = handle.submit_read(["ox", "oy"], reader=handle.readers[0])
        rules = [
            DelayRule(
                name="stall-write-install-at-sy",
                holds=holds_message(dst="sy", predicate=lambda m: m.get("txn") == write_id),
                until=until_transaction_done(read_id),
            )
        ]
        handle.simulation.scheduler = AdversarialScheduler(rules=rules)
        handle.run_to_completion()
        read_record = handle.simulation.transaction_record(read_id)
        write_record = handle.simulation.transaction_record(write_id)
        assert read_record.complete and write_record.complete
        # The read either saw nothing of the write or (for C, whose coordinator
        # may already know the write) a consistent snapshot — never a mix.
        assert handle.serializability().ok
        assert read_record.result.as_dict in ({"ox": 0, "oy": 0}, {"ox": "w", "oy": "w"})

    def test_snow_report_still_clean_for_algorithm_a_under_stall(self):
        proto = get_protocol("algorithm-a")
        handle = proto.build(num_readers=1, num_writers=2, num_objects=2)
        w1 = handle.submit_write({"ox": "a", "oy": "a"}, writer="w1")
        r1 = handle.submit_read(["ox", "oy"])
        rules = [
            DelayRule(
                name="stall-w1-at-sy",
                holds=holds_message(dst="sy", predicate=lambda m: m.get("txn") == w1),
                until=until_transaction_done(r1),
            )
        ]
        handle.simulation.scheduler = AdversarialScheduler(rules=rules)
        handle.run_to_completion()
        assert handle.snow_report().satisfies_snow
