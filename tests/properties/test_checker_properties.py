"""Property-based tests for the strict-serializability checkers."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.serializability import check_lemma20, check_strict_serializability
from repro.txn.datatype import run_serial
from repro.txn.history import History, HistoryEntry
from repro.txn.transactions import ReadResult, read, write_pairs

OBJECTS = ("o1", "o2")
values = st.integers(min_value=1, max_value=4)


@st.composite
def transaction_sequences(draw):
    """A random sequence of transactions with serial (non-overlapping) timing."""
    count = draw(st.integers(min_value=1, max_value=7))
    txns = []
    for index in range(count):
        subset = draw(
            st.lists(st.sampled_from(OBJECTS), min_size=1, max_size=len(OBJECTS), unique=True)
        )
        if draw(st.booleans()):
            txns.append(read(*subset, txn_id=f"T{index}"))
        else:
            txns.append(write_pairs(tuple((obj, draw(values)) for obj in subset), txn_id=f"T{index}"))
    return txns


def serial_history(txns):
    """Build the history of running ``txns`` back-to-back with correct results."""
    responses, _ = run_serial(txns, OBJECTS, initial_value=0)
    entries = []
    for position, (txn, response) in enumerate(zip(txns, responses)):
        entries.append(
            HistoryEntry(
                txn=txn,
                client=f"c{position % 3}",
                invoke_index=2 * position,
                respond_index=2 * position + 1,
                result=response,
            )
        )
    return History(entries, objects=OBJECTS, initial_value=0)


@settings(max_examples=50, deadline=None)
@given(transaction_sequences())
def test_correct_serial_histories_are_always_accepted(txns):
    history = serial_history(txns)
    result = check_strict_serializability(history)
    assert result.ok
    # The witness order must itself be consistent with real time: the i-th
    # transaction responded before the (i+1)-th was invoked, so the witness
    # must list them in submission order.
    assert list(result.witness_order) == [txn.txn_id for txn in txns]


@settings(max_examples=50, deadline=None)
@given(transaction_sequences())
def test_impossible_read_values_are_always_rejected(txns):
    reads_present = [txn for txn in txns if txn.is_read()]
    if not reads_present:
        return
    history = serial_history(txns)
    # Corrupt one read to observe a value that no write ever produced.
    victim = reads_present[0]
    corrupted_entries = []
    for entry in history.entries():
        if entry.txn_id == victim.txn_id:
            bogus = {obj: 999 for obj in victim.objects}
            corrupted_entries.append(
                HistoryEntry(
                    txn=entry.txn,
                    client=entry.client,
                    invoke_index=entry.invoke_index,
                    respond_index=entry.respond_index,
                    result=ReadResult.from_mapping(bogus),
                )
            )
        else:
            corrupted_entries.append(entry)
    corrupted = History(corrupted_entries, objects=OBJECTS, initial_value=0)
    assert not check_strict_serializability(corrupted).ok


@settings(max_examples=50, deadline=None)
@given(transaction_sequences())
def test_lemma20_accepts_position_tags_on_serial_histories(txns):
    """Tagging a serial history by position satisfies P1-P4.

    Reads are tagged with the position of the latest preceding write (writes
    with their own position), mirroring how algorithms A and B derive tags
    from list positions.
    """
    history = serial_history(txns)
    tags = {}
    latest_write_tag = 1
    for position, txn in enumerate(txns, start=2):
        if txn.is_write():
            latest_write_tag = position
            tags[txn.txn_id] = position
        else:
            tags[txn.txn_id] = latest_write_tag
    result = check_lemma20(history, tags, cross_check=False)
    assert result.ok, result.describe()


@settings(max_examples=30, deadline=None)
@given(transaction_sequences(), st.integers(min_value=0, max_value=6))
def test_concurrent_reads_of_either_snapshot_are_accepted(txns, overlap_position):
    """A read overlapping one write may see old or new values and stays accepted."""
    writes = [txn for txn in txns if txn.is_write()]
    if not writes:
        return
    history_entries = list(serial_history(txns).entries())
    # Append one read concurrent with the *last* write, observing the state
    # just before that write (the "old" snapshot) — always serializable by
    # placing the read before it.
    responses, _ = run_serial(txns, OBJECTS, initial_value=0)
    last_write_index = max(i for i, txn in enumerate(txns) if txn.is_write())
    prefix = txns[:last_write_index]
    prefix_state = run_serial(prefix, OBJECTS, initial_value=0)[1]
    extra_read = read(*OBJECTS, txn_id="R-extra")
    last_write_entry = history_entries[last_write_index]
    history_entries.append(
        HistoryEntry(
            txn=extra_read,
            client="c-extra",
            invoke_index=last_write_entry.invoke_index,
            respond_index=last_write_entry.respond_index,
            result=ReadResult.from_mapping(prefix_state.as_dict),
        )
    )
    history = History(history_entries, objects=OBJECTS, initial_value=0)
    assert check_strict_serializability(history).ok
