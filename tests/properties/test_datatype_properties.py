"""Property-based tests for the sequential data type OT (the reference model)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.txn.datatype import OTState, apply_transaction, run_serial
from repro.txn.transactions import ReadResult, WRITE_OK, read, write_pairs


OBJECTS = ("o1", "o2", "o3")

values = st.integers(min_value=-5, max_value=5) | st.text(alphabet="abc", min_size=1, max_size=3)


@st.composite
def transactions(draw):
    """A random READ or WRITE transaction over a subset of OBJECTS."""
    subset = draw(st.lists(st.sampled_from(OBJECTS), min_size=1, max_size=len(OBJECTS), unique=True))
    if draw(st.booleans()):
        return read(*subset)
    updates = tuple((obj, draw(values)) for obj in subset)
    return write_pairs(updates)


transaction_lists = st.lists(transactions(), min_size=0, max_size=8)


@settings(max_examples=60, deadline=None)
@given(transaction_lists)
def test_serial_execution_matches_naive_dict_model(txns):
    """run_serial agrees with a straightforward dict-based interpreter."""
    responses, final_state = run_serial(txns, OBJECTS, initial_value=0)
    model = {obj: 0 for obj in OBJECTS}
    for txn, response in zip(txns, responses):
        if txn.is_read():
            assert isinstance(response, ReadResult)
            assert response.as_dict == {obj: model[obj] for obj in txn.objects}
        else:
            assert response == WRITE_OK
            for obj, value in txn.updates:
                model[obj] = value
    assert final_state.as_dict == model


@settings(max_examples=60, deadline=None)
@given(transaction_lists)
def test_reads_never_change_state(txns):
    state = OTState.initial(OBJECTS, 0)
    for txn in txns:
        before = state
        _, state = apply_transaction(state, txn)
        if txn.is_read():
            assert state == before


@settings(max_examples=60, deadline=None)
@given(transactions(), transactions())
def test_writes_to_disjoint_objects_commute(first, second):
    if first.is_read() or second.is_read():
        return
    if set(first.objects) & set(second.objects):
        return
    state = OTState.initial(OBJECTS, 0)
    _, state_ab = apply_transaction(state, first)
    _, state_ab = apply_transaction(state_ab, second)
    _, state_ba = apply_transaction(state, second)
    _, state_ba = apply_transaction(state_ba, first)
    assert state_ab == state_ba


@settings(max_examples=60, deadline=None)
@given(transaction_lists, values)
def test_last_writer_wins_per_object(txns, probe_value):
    """After a serial run, each object's value is the last write to it (or initial)."""
    _, final_state = run_serial(txns, OBJECTS, initial_value="init")
    for obj in OBJECTS:
        expected = "init"
        for txn in txns:
            if txn.is_write() and obj in txn.objects:
                expected = dict(txn.updates)[obj]
        assert final_state.value_for(obj) == expected


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(st.sampled_from(OBJECTS), values, min_size=1))
def test_with_updates_overrides_exactly_the_given_objects(updates):
    state = OTState.initial(OBJECTS, 0)
    updated = state.with_updates(updates)
    for obj in OBJECTS:
        if obj in updates:
            assert updated.value_for(obj) == updates[obj]
        else:
            assert updated.value_for(obj) == 0
