"""Property-based tests for messages, traces and fragment commuting."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ioa.actions import ActionKind, Message, internal_action, recv_action, send_action
from repro.ioa.trace import Fragment, Trace
from repro.proofs.fragments import can_commute, commute_adjacent

ACTORS = ("r1", "r2", "sx", "sy")

payload_values = st.one_of(
    st.integers(-3, 3),
    st.text(alphabet="xyz", max_size=3),
    st.lists(st.integers(0, 3), max_size=3),
    st.dictionaries(st.text(alphabet="ab", min_size=1, max_size=2), st.integers(0, 3), max_size=2),
)
payloads = st.dictionaries(st.text(alphabet="kmn", min_size=1, max_size=3), payload_values, max_size=3)


@settings(max_examples=60, deadline=None)
@given(payloads)
def test_payload_freezing_preserves_lookups(payload):
    message = Message.make("m", "r1", "sx", payload)
    for key, value in payload.items():
        frozen = message.get(key)
        if isinstance(value, list):
            assert frozen == tuple(value)
        elif isinstance(value, dict):
            assert dict(frozen) == value
        else:
            assert frozen == value
    assert hash(message) == hash(message)


@settings(max_examples=60, deadline=None)
@given(payloads, payloads)
def test_with_payload_merges(first, second):
    message = Message.make("m", "a", "b", first)
    merged = message.with_payload(**second)
    for key in second:
        assert merged.get(key) is not None or second[key] is None


@st.composite
def message_exchanges(draw):
    """A list of (src, dst) pairs to turn into send/recv action sequences."""
    count = draw(st.integers(min_value=0, max_value=10))
    pairs = []
    for _ in range(count):
        src = draw(st.sampled_from(ACTORS))
        dst = draw(st.sampled_from([a for a in ACTORS if a != src]))
        pairs.append((src, dst))
    return pairs


@settings(max_examples=60, deadline=None)
@given(message_exchanges())
def test_projections_partition_the_trace(pairs):
    trace = Trace()
    for src, dst in pairs:
        message = Message.make("m", src, dst, {})
        trace.append(send_action(message))
        trace.append(recv_action(message))
    total = sum(len(trace.project(actor)) for actor in ACTORS)
    assert total == len(trace)
    trace.validate_channels()
    assert trace.undelivered_messages() == ()


@settings(max_examples=60, deadline=None)
@given(message_exchanges())
def test_indices_always_consecutive(pairs):
    trace = Trace()
    for src, dst in pairs:
        trace.append(internal_action(src))
        trace.append(internal_action(dst))
    assert [a.index for a in trace] == list(range(len(trace)))


@st.composite
def commutable_fragment_pairs(draw):
    """Two single-actor fragments at distinct actors with no cross messages."""
    first_actor, second_actor = draw(
        st.lists(st.sampled_from(ACTORS), min_size=2, max_size=2, unique=True)
    )
    def fragment_for(actor, label):
        length = draw(st.integers(min_value=1, max_value=3))
        actions = tuple(internal_action(actor, {"step": f"{label}{i}"}).with_index(i) for i in range(length))
        return Fragment(actions=actions, label=label)

    return fragment_for(first_actor, "G1"), fragment_for(second_actor, "G2")


@settings(max_examples=60, deadline=None)
@given(commutable_fragment_pairs())
def test_commuting_preserves_per_actor_projections(pair):
    first, second = pair
    combined = list(first.actions) + list(second.actions)
    swapped = commute_adjacent(combined, first, second, validate=True)
    assert len(swapped) == len(combined)
    for actor in ACTORS:
        before = [a.info for a in combined if a.actor == actor]
        after = [a.info for a in swapped if a.actor == actor]
        assert before == after


@settings(max_examples=60, deadline=None)
@given(commutable_fragment_pairs())
def test_commuting_internal_fragments_always_allowed(pair):
    first, second = pair
    assert can_commute(first, second).allowed


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(ACTORS), min_size=1, max_size=8))
def test_fragment_actor_sets(actor_list):
    actions = tuple(internal_action(actor).with_index(i) for i, actor in enumerate(actor_list))
    fragment = Fragment(actions=actions, label="f")
    assert set(fragment.actors()) == set(actor_list)
    if len(set(actor_list)) == 1:
        assert fragment.single_actor() == actor_list[0]
    else:
        assert fragment.single_actor() is None
