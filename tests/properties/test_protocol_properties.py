"""Property-based end-to-end tests: protocol guarantees under random workloads/schedules.

These are the heavyweight properties: hypothesis drives both the workload
shape and the network schedule, and the trace-level checkers judge the
outcome.  Example counts are kept modest because each example is a full
simulation plus a serializability search.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.snow import check_snow
from repro.ioa import RandomScheduler
from repro.protocols import get_protocol


workload_shapes = st.tuples(
    st.integers(min_value=1, max_value=3),  # writers
    st.integers(min_value=1, max_value=2),  # write transactions per writer
    st.integers(min_value=1, max_value=3),  # read transactions
    st.integers(min_value=0, max_value=10_000),  # schedule seed
)


def run_protocol(protocol_name, writers, writes_each, reads, seed, readers=2, objects=2):
    protocol = get_protocol(protocol_name)
    if not protocol.supports_multiple_readers:
        readers = 1
    handle = protocol.build(
        num_readers=readers,
        num_writers=writers,
        num_objects=objects,
        scheduler=RandomScheduler(seed=seed),
        seed=seed,
    )
    for sequence in range(1, writes_each + 1):
        for writer in handle.writers:
            handle.submit_write({obj: f"{writer}-{sequence}" for obj in handle.objects}, writer=writer)
    for index in range(reads):
        handle.submit_read(handle.objects, reader=handle.readers[index % len(handle.readers)])
    handle.run_to_completion()
    return handle


COMMON_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON_SETTINGS)
@given(workload_shapes)
def test_algorithm_a_satisfies_snow_on_random_workloads(shape):
    writers, writes_each, reads, seed = shape
    handle = run_protocol("algorithm-a", writers, writes_each, reads, seed)
    report = check_snow(handle.simulation, handle.history())
    assert report.satisfies_snow, report.describe()


@settings(**COMMON_SETTINGS)
@given(workload_shapes)
def test_algorithm_b_satisfies_snw_one_version_on_random_workloads(shape):
    writers, writes_each, reads, seed = shape
    handle = run_protocol("algorithm-b", writers, writes_each, reads, seed)
    report = check_snow(handle.simulation, handle.history())
    assert report.satisfies_snw, report.describe()
    assert report.one_version
    assert report.max_rounds() <= 2


@settings(**COMMON_SETTINGS)
@given(workload_shapes)
def test_algorithm_c_satisfies_snw_on_random_workloads(shape):
    writers, writes_each, reads, seed = shape
    handle = run_protocol("algorithm-c", writers, writes_each, reads, seed)
    report = check_snow(handle.simulation, handle.history())
    assert report.satisfies_snw, report.describe()


@settings(**COMMON_SETTINGS)
@given(workload_shapes)
def test_occ_baseline_is_strictly_serializable_on_random_workloads(shape):
    writers, writes_each, reads, seed = shape
    handle = run_protocol("occ-double-collect", writers, writes_each, reads, seed)
    report = check_snow(handle.simulation, handle.history())
    assert report.strict_serializable, report.describe()
    assert report.one_version


@settings(**COMMON_SETTINGS)
@given(workload_shapes)
def test_s2pl_baseline_is_strictly_serializable_on_random_workloads(shape):
    writers, writes_each, reads, seed = shape
    handle = run_protocol("s2pl", writers, writes_each, reads, seed)
    report = check_snow(handle.simulation, handle.history())
    assert report.strict_serializable, report.describe()


@settings(**COMMON_SETTINGS)
@given(workload_shapes)
def test_all_transactions_complete_for_every_protocol(shape):
    writers, writes_each, reads, seed = shape
    for protocol_name in ("algorithm-a", "algorithm-b", "algorithm-c", "eiger", "naive-snow"):
        handle = run_protocol(protocol_name, writers, writes_each, reads, seed)
        assert not handle.simulation.incomplete_transactions()
