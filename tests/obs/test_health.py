"""The health/SLO subsystem: latency SLOs, rolling rates, replica health.

Unit tests drive a *detached* :class:`HealthPlane` with hand-built actions
carrying explicit ``vtime`` stamps (the detached clock reconstructs time
from those), so every threshold is exercised at an exact virtual instant;
the end-to-end tests pin determinism of the report on real runs and the
post-mortem :func:`derive_health` path.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler
from repro.ioa import FIFOScheduler
from repro.ioa.actions import Action, ActionKind, Message
from repro.obs import HealthPlane, HealthView, SLOPolicy, derive_health

from tests.consensus.conftest import leader_crash_plan
from tests.obs.conftest import run_observed


def act(kind, actor, vtime, message=None, **info):
    return Action.make(kind, actor, message=message, info={"vtime": vtime, **info})


def invoke(txn, txn_kind, vtime, actor="w1"):
    return act(ActionKind.INVOKE, actor, vtime, txn=txn, txn_kind=txn_kind)


def respond(txn, vtime, actor="w1"):
    return act(ActionKind.RESPOND, actor, vtime, txn=txn)


def feed(plane, *actions):
    for action in actions:
        plane.on_action(action)
    return HealthView(plane)


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"read_latency": 0},
        {"write_latency": 0},
        {"window": 0},
        {"history": 0},
        {"stale_after": 0},
    ],
)
def test_slo_policy_rejects_degenerate_thresholds(kwargs):
    with pytest.raises(ValueError):
        SLOPolicy(**kwargs)


def test_slo_policy_maps_kinds_to_latency_slos():
    policy = SLOPolicy(read_latency=5, write_latency=9)
    assert policy.latency_slo("read") == 5
    assert policy.latency_slo("write") == 9
    assert "slo(read<=5" in policy.describe()


# ----------------------------------------------------------------------
# Latency SLOs
# ----------------------------------------------------------------------
def test_latency_measured_on_the_virtual_clock_with_slo_verdicts():
    plane = HealthPlane(SLOPolicy(read_latency=5, write_latency=10))
    view = feed(
        plane,
        invoke("R1", "read", 0),
        respond("R1", 4),  # latency 4 <= 5: ok
        invoke("R2", "read", 10),
        respond("R2", 20),  # latency 10 > 5: breach
        invoke("W1", "write", 20),
        respond("W1", 30),  # latency 10 <= 10: ok
    )
    assert view.slo_attainment("read") == 0.5
    assert view.slo_attainment("write") == 1.0
    report = view.report()
    assert report["slo"]["read"] == {
        "slo": 5,
        "attainment": 0.5,
        "ok": 1,
        "breach": 1,
        "latency": report["slo"]["read"]["latency"],
    }
    assert report["slo"]["read"]["latency"]["count"] == 2
    assert report["slo"]["read"]["latency"]["max"] == 10


def test_attainment_is_none_before_any_completion():
    view = feed(HealthPlane(), invoke("W1", "write", 0))
    assert view.slo_attainment("write") is None
    assert view.report()["incomplete_txns"] == ["W1"]


def test_unmatched_respond_is_ignored():
    view = feed(HealthPlane(), respond("GHOST", 5))
    assert view.report()["slo"] == {}


# ----------------------------------------------------------------------
# Replica health / suspects
# ----------------------------------------------------------------------
def test_replica_health_decays_linearly_with_staleness():
    plane = HealthPlane(SLOPolicy(stale_after=100))
    feed(plane, act(ActionKind.INTERNAL, "sx", 0))
    assert plane.replica_health("sx", now=0) == 1.0
    assert plane.replica_health("sx", now=50) == 0.5
    assert plane.replica_health("sx", now=100) == 0.0
    assert plane.replica_health("sx", now=999) == 0.0
    # absence of evidence is not evidence of failure
    assert plane.replica_health("never-seen", now=999) == 1.0


def test_suspects_are_sorted_and_thresholded():
    plane = HealthPlane(SLOPolicy(stale_after=100))
    view = feed(
        plane,
        act(ActionKind.INTERNAL, "sz", 0),
        act(ActionKind.INTERNAL, "sy", 0),
        act(ActionKind.INTERNAL, "sx", 80),  # drives the clock to 80
    )
    # sy/sz are 80 steps stale -> health 0.2 <= 0.25; sx is fresh
    assert view.suspects(threshold=0.25) == ("sy", "sz")
    assert view.report()["suspects"] == ["sy", "sz"]


# ----------------------------------------------------------------------
# Rolling rates: timeouts, errors, stalls, probe RTTs
# ----------------------------------------------------------------------
def test_timeouts_errors_and_stalls_are_counted():
    plane = HealthPlane(SLOPolicy(window=16, history=2))
    mismatch = Message.make("epoch-mismatch", "sx", "coor")
    view = feed(
        plane,
        act(ActionKind.INTERNAL, "coor", 1, timeout="election"),
        act(ActionKind.RECV, "coor", 2, message=mismatch),
        act(ActionKind.INTERNAL, "w1", 3),
    )
    plane.note_stall(4)
    totals = view.report()["totals"]
    assert totals["timeouts"] == 1
    assert totals["errors"] == 1
    assert totals["stalls"] == 1
    assert totals["events"] == 3  # note_stall is not an observed action
    assert view.timeout_rate() == pytest.approx(1 / 3, abs=1e-4)
    assert view.error_rate() == pytest.approx(1 / 3, abs=1e-4)


def test_rolling_window_forgets_old_buckets():
    plane = HealthPlane(SLOPolicy(window=10, history=2))
    view = feed(plane, act(ActionKind.INTERNAL, "coor", 1, timeout="x"))
    assert view.timeout_rate() == 1.0
    # two fresh buckets later the timeout bucket has rolled out of history
    feed(plane, act(ActionKind.INTERNAL, "w1", 50), act(ActionKind.INTERNAL, "w1", 70))
    assert view.timeout_rate() == 0.0
    # ... but the lifetime totals never forget
    assert view.report()["totals"]["timeouts"] == 1


def test_probe_rtt_measured_from_ctl_ack_stamps():
    plane = HealthPlane()
    ack = Message.make("ctl-ack", "sx.2", "ctl", {"sent": 3})
    view = feed(plane, act(ActionKind.RECV, "ctl", 10, message=ack))
    assert view.probe_rtt("sx.2")["count"] == 1
    assert view.probe_rtt("sx.2")["max"] == 7
    assert view.probe_rtt("unknown") == {"count": 0}


# ----------------------------------------------------------------------
# End-to-end: real runs, determinism, the rendered report
# ----------------------------------------------------------------------
def run_healthy(health=True, **kwargs):
    return run_observed(
        "algorithm-b",
        health=health,
        scheduler=FIFOScheduler(),
        replication_factor=3,
        quorum="majority",
        **kwargs,
    )


def test_end_of_run_report_is_deterministic():
    """Same build, same workload (pinned txn ids) -> byte-identical report."""
    _, plane_a = run_healthy()
    _, plane_b = run_healthy()
    report = plane_a.health_view.report()
    assert report == plane_b.health_view.report()
    assert report["totals"]["events"] > 0
    assert report["slo"]["read"]["attainment"] == 1.0
    assert report["slo"]["write"]["attainment"] == 1.0
    assert report["incomplete_txns"] == []


def test_render_is_a_stable_text_reflection_of_the_report():
    _, plane = run_healthy()
    text = plane.health_view.render()
    assert text.startswith("health @ vtime")
    assert "read:" in text and "write:" in text
    assert plane.health_view.render() == text


def test_custom_slo_policy_threads_through_the_plane():
    """An impossible 1-step SLO: every transaction breaches, proving the
    policy (not the default) is the one consulted."""
    _, plane = run_healthy(health=SLOPolicy(read_latency=1, write_latency=1))
    view = plane.health_view
    assert view.slo_attainment("read") == 0.0
    assert view.slo_attainment("write") == 0.0


def test_derive_health_is_deterministic_and_needs_no_plane():
    """Post-mortem health from a run that had no observability at all."""
    handle, _ = run_healthy()
    first = derive_health(handle.simulation).report()
    second = derive_health(handle.simulation).report()
    assert first == second
    assert first["totals"]["events"] == len(handle.trace())
    assert first["incomplete_txns"] == []


def test_failover_timeouts_feed_the_health_plane():
    """A real failover run: the election timeout the crash forces shows up
    in the health totals (and the run still completes cleanly)."""
    _, plane = run_observed(
        "algorithm-b",
        health=True,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        consensus_factor=3,
        plan=leader_crash_plan(),
        run_to_completion=False,
    )
    report = plane.health_view.report()
    assert report["totals"]["timeouts"] > 0
    assert report["incomplete_txns"] == []


def test_chaos_fastforward_reports_a_stall_to_the_health_plane():
    """Unit-level pin of the scheduler→health stall hook: with no fault
    injector to pre-advance the clock, a pending set with only future
    ``ready_at`` stamps forces the chaos scheduler to fast-forward, and the
    health plane counts the stall."""
    from repro.ioa import PendingDelivery
    from repro.obs import ObservabilityPlane

    class _Kernel:
        steps_taken = 10
        fault_plane = None

        def __init__(self, obs):
            self.obs = obs

    plane = ObservabilityPlane(health=True)
    delivery = PendingDelivery(
        message=Message.make("m", "a", "b"), enqueued_at=1, ready_at=50
    )
    ChaosScheduler(base=FIFOScheduler()).choose([delivery], _Kernel(plane))
    assert plane.registry.counter_total("scheduler.chaos_fastforwards") == 1
    assert HealthView(plane.health).report()["totals"]["stalls"] == 1
