"""The sampling trace modes: full / sampled(rate, seed) / ring(capacity).

The contract under test, end to end on real runs:

* ``full`` is the seed behaviour — explicit or defaulted, byte-identical
  (the per-protocol golden pin lives in ``test_golden_rf1.py``; here the
  two spellings are compared directly);
* ``sampled`` drops only SEND/RECV records, deterministically per seed,
  while **observers stay exact**: metrics counters, registry snapshots and
  the streaming monitors see every appended action in every mode;
* ``ring`` keeps the newest ``capacity`` records with true global indices;
* the position-dependent queries that would lie on a partial record
  (``prefix``) refuse loudly in non-full modes.
"""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, TraceMode
from repro.ioa.actions import Action, ActionKind
from repro.ioa.trace import Trace, TraceError

from tests.obs.conftest import run_observed
from tests.replication.conftest import run_fixed_workload


def run_mode(trace_mode, protocol="algorithm-b", **kwargs):
    """The fixed explicit-id workload (txn ids pinned, so two same-process
    runs are directly comparable) under a retention mode."""
    return run_fixed_workload(
        protocol,
        scheduler=FIFOScheduler(),
        replication_factor=3,
        quorum="majority",
        trace_mode=trace_mode,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Mode validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "bad",
    [
        lambda: TraceMode(kind="hologram"),
        lambda: TraceMode.sampled(rate=0.0),
        lambda: TraceMode.sampled(rate=1.5),
        lambda: TraceMode.ring(capacity=0),
    ],
)
def test_degenerate_modes_are_rejected(bad):
    with pytest.raises(ValueError):
        bad()


def test_mode_describe_strings():
    assert TraceMode.full().describe() == "full"
    assert TraceMode.sampled(0.1, seed=7).describe() == "sampled(rate=0.1, seed=7)"
    assert TraceMode.ring(256).describe() == "ring(capacity=256)"


# ----------------------------------------------------------------------
# full: the seed behaviour, spelled or defaulted
# ----------------------------------------------------------------------
def test_default_and_explicit_full_are_identical():
    defaulted = run_mode(None)
    explicit = run_mode(TraceMode.full())
    assert defaulted.trace().signature() == explicit.trace().signature()
    trace = explicit.simulation.trace
    assert trace.is_full()
    assert trace.total_appended == len(trace)
    assert trace.sampled_out == 0


def test_rate_one_sampled_mode_retains_everything():
    """``sampled(1.0)`` is full retention (the never-drop fast path)."""
    full = run_mode(TraceMode.full())
    everything = run_mode(TraceMode.sampled(rate=1.0, seed=5))
    assert everything.trace().signature() == full.trace().signature()
    assert everything.simulation.trace.sampled_out == 0


# ----------------------------------------------------------------------
# sampled: deterministic, send/recv only, observers exact
# ----------------------------------------------------------------------
def test_sampled_runs_are_byte_identical_per_seed():
    first = run_mode(TraceMode.sampled(rate=0.2, seed=11))
    second = run_mode(TraceMode.sampled(rate=0.2, seed=11))
    assert first.trace().signature() == second.trace().signature()
    assert [a.index for a in first.trace()] == [a.index for a in second.trace()]


def test_different_sampler_seeds_keep_different_records():
    first = run_mode(TraceMode.sampled(rate=0.2, seed=11))
    second = run_mode(TraceMode.sampled(rate=0.2, seed=12))
    assert first.trace().signature() != second.trace().signature()
    # ... but the *execution* is untouched: same number of appended actions,
    # same transaction outcomes (the sampler RNG lives inside the trace).
    assert first.simulation.trace.total_appended == second.simulation.trace.total_appended
    for txn_id in ("R1", "R2"):
        assert (
            first.simulation.transaction_record(txn_id).result
            == second.simulation.transaction_record(txn_id).result
        ), txn_id


def test_sampling_drops_only_send_and_recv():
    handle = run_mode(TraceMode.sampled(rate=0.1, seed=3))
    trace = handle.simulation.trace
    full = run_mode(TraceMode.full()).simulation.trace
    assert len(trace) < len(full)
    assert trace.total_appended == full.total_appended
    assert trace.sampled_out == trace.total_appended - len(trace)
    for kind in (ActionKind.INVOKE, ActionKind.RESPOND, ActionKind.INTERNAL):
        assert len(trace.of_kind(kind)) == len(full.of_kind(kind)), kind
    # retained records carry their true global indices (sparse but ordered)
    indices = [a.index for a in trace]
    assert indices == sorted(indices) and len(set(indices)) == len(indices)
    # last_index is the newest *retained* record's true global position
    # (the run's final records may themselves have been sampled out)
    assert trace.last_index == indices[-1] <= full.last_index


def test_observers_stay_exact_under_sampling():
    """The acceptance-criterion heart: counters and monitors are computed
    from *every* appended action, so sampling changes no observed number."""
    _, full_plane = run_observed(
        "algorithm-b", monitors=True, scheduler=FIFOScheduler(),
        replication_factor=3, quorum="majority",
    )
    handle, sampled_plane = run_observed(
        "algorithm-b", monitors=True, scheduler=FIFOScheduler(),
        replication_factor=3, quorum="majority",
        trace_mode=TraceMode.sampled(rate=0.1, seed=3),
    )
    assert sampled_plane.registry.snapshot() == full_plane.registry.snapshot()
    trace = handle.simulation.trace
    assert sampled_plane.registry.counter_total("kernel.events") == trace.total_appended
    assert sampled_plane.monitors.ok
    assert sampled_plane.monitors._seen == trace.total_appended > len(trace)


def test_ring_observers_are_exact_too():
    _, full_plane = run_observed("algorithm-b", scheduler=FIFOScheduler())
    handle, ring_plane = run_observed(
        "algorithm-b", scheduler=FIFOScheduler(), trace_mode=TraceMode.ring(16)
    )
    assert ring_plane.registry.snapshot() == full_plane.registry.snapshot()
    assert len(handle.simulation.trace) == 16


# ----------------------------------------------------------------------
# ring: the flight recorder
# ----------------------------------------------------------------------
def test_ring_keeps_the_newest_records_with_true_indices():
    handle = run_mode(TraceMode.ring(32))
    trace = handle.simulation.trace
    full = run_mode(TraceMode.full()).simulation.trace
    assert len(trace) == 32
    assert trace.total_appended == full.total_appended > 32
    expected = [a.index for a in full][-32:]
    assert [a.index for a in trace] == expected
    assert trace.last_index == full.last_index


def test_ring_larger_than_the_run_retains_everything():
    handle = run_mode(TraceMode.ring(100_000))
    full = run_mode(TraceMode.full())
    assert handle.trace().signature() == full.trace().signature()


# ----------------------------------------------------------------------
# Queries on partial records
# ----------------------------------------------------------------------
def test_prefix_refuses_on_non_full_modes():
    for mode in (TraceMode.sampled(0.5, seed=1), TraceMode.ring(8)):
        trace = Trace(mode=mode)
        action = trace.append(Action.make(ActionKind.INVOKE, "w1", info={"txn": "W1"}))
        with pytest.raises(TraceError, match="full-mode"):
            trace.prefix(action)


def test_windowed_queries_scan_by_stamped_index():
    handle = run_mode(TraceMode.sampled(rate=0.2, seed=11))
    trace = handle.simulation.trace
    window = trace.between(10, trace.last_index)
    assert all(10 < a.index < trace.last_index for a in window)
    anchor = trace[0]
    tail = trace.suffix_after(anchor)
    assert all(a.index > anchor.index for a in tail)
    assert len(tail) == len(trace) - 1


def test_check_snow_refuses_on_partial_records():
    """The SNOW N/O checkers walk per-message records — on a sampled trace
    they would return *wrong* verdicts (phantom blocking servers, zero
    replies seen), so the checker refuses like ``prefix()`` does."""
    from repro.core.snow import check_snow

    handle = run_mode(TraceMode.sampled(rate=0.1, seed=7))
    with pytest.raises(TraceError, match="full-mode"):
        check_snow(handle.simulation, handle.history())
    with pytest.raises(TraceError, match="full-mode"):
        handle.snow_report()


def test_run_experiment_refuses_property_checks_on_partial_records():
    """...and the runner refuses the combination up front, before spending
    a run on it; ``check_properties=False`` is the retention-mode spelling."""
    from repro.analysis import ExperimentConfig, WorkloadSpec, run_experiment

    config = ExperimentConfig(
        protocol="algorithm-b",
        replication_factor=3,
        quorum="majority",
        workload=WorkloadSpec(reads_per_reader=2, writes_per_writer=2, seed=3),
        trace_mode=TraceMode.sampled(rate=0.1, seed=7),
    )
    with pytest.raises(ValueError, match="check_properties=False"):
        run_experiment(config)

    from dataclasses import replace

    result = run_experiment(replace(config, check_properties=False, monitors=True))
    assert result.snow is None
    assert result.property_string() == "????"
    assert result.obs.monitors.ok  # observers stay exact; only verdicts opt out
    assert len(result.metrics.transactions) > 0


def test_sampling_stats_partitions_total_appended():
    from repro.obs import sampling_stats

    sampled = sampling_stats(run_mode(TraceMode.sampled(0.1, seed=3)).simulation.trace)
    assert sampled["mode"] == "sampled(rate=0.1, seed=3)"
    assert sampled["retained"] + sampled["sampled_out"] == sampled["total_appended"]
    assert 0.0 < sampled["retention"] < 1.0

    ring = sampling_stats(run_mode(TraceMode.ring(16)).simulation.trace)
    assert ring["retained"] == 16 and ring["sampled_out"] == 0

    full = sampling_stats(run_mode(None).simulation.trace)
    assert full == {
        "mode": "full",
        "total_appended": full["total_appended"],
        "retained": full["total_appended"],
        "sampled_out": 0,
        "retention": 1.0,
    }
