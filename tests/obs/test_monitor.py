"""Unit tests for the streaming invariant monitors.

Each automaton is fed hand-forged internal actions (the same marker payloads
the consensus/reconfig layers emit) so violations can be injected precisely;
the suite-level tests check alert packaging, the exact offending trace index
and the ``halt_on_violation`` path out of ``Trace.append``.
"""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, Trace
from repro.ioa.actions import Action, ActionKind
from repro.obs import (
    InvariantViolationError,
    MonitorSuite,
    default_monitors,
    watch_trace,
)
from repro.obs.monitor import (
    ConfigInFlightMonitor,
    ElectionSafetyMonitor,
    LogMatchingMonitor,
    QuorumIntersectionMonitor,
)

from tests import invariants
from tests.obs.conftest import run_observed


def internal(actor, **info):
    return Action(kind=ActionKind.INTERNAL, actor=actor, info=tuple(info.items()))


def leader(member, term):
    return internal(member, consensus="became-leader", term=term, member=member)


def apply_entry(member, index, term, request):
    return internal(
        member, consensus="apply", index=index, term=term, request=request
    )


def reconfig_marker(kind, epoch, **extra):
    return internal("reconfig-driver", reconfig=kind, epoch=epoch, **extra)


# ----------------------------------------------------------------------
# Election safety
# ----------------------------------------------------------------------
def test_election_safety_accepts_one_leader_per_term():
    monitor = ElectionSafetyMonitor()
    assert monitor.observe(leader("m1", 1), 0) is None
    assert monitor.observe(leader("m2", 2), 1) is None
    # re-announcement by the same member is benign
    assert monitor.observe(leader("m2", 2), 2) is None


def test_election_safety_flags_a_second_leader_in_one_term():
    monitor = ElectionSafetyMonitor()
    assert monitor.observe(leader("m1", 3), 0) is None
    message = monitor.observe(leader("m2", 3), 1)
    assert message is not None and "term 3" in message


# ----------------------------------------------------------------------
# Log matching
# ----------------------------------------------------------------------
def test_log_matching_accepts_agreeing_members():
    monitor = LogMatchingMonitor()
    for member in ("m1", "m2", "m3"):
        assert monitor.observe(apply_entry(member, 1, 1, "W1"), 0) is None
        assert monitor.observe(apply_entry(member, 2, 1, "W2"), 1) is None


def test_log_matching_accepts_batched_entries_at_one_index():
    """consensus_batching applies several sub-requests at the same log
    index; position-wise agreement must not be read as a conflict."""
    monitor = LogMatchingMonitor()
    for member in ("m1", "m2"):
        assert monitor.observe(apply_entry(member, 5, 2, "Wa"), 0) is None
        assert monitor.observe(apply_entry(member, 5, 2, "Wb"), 1) is None


def test_log_matching_flags_divergent_entries():
    monitor = LogMatchingMonitor()
    assert monitor.observe(apply_entry("m1", 4, 2, "W9"), 0) is None
    message = monitor.observe(apply_entry("m2", 4, 2, "W8"), 1)
    assert message is not None and "log index 4" in message


def test_log_matching_flags_term_divergence_too():
    monitor = LogMatchingMonitor()
    assert monitor.observe(apply_entry("m1", 4, 2, "W9"), 0) is None
    message = monitor.observe(apply_entry("m2", 4, 3, "W9"), 1)
    assert message is not None


# ----------------------------------------------------------------------
# Quorum intersection
# ----------------------------------------------------------------------
class _DisjointPolicy:
    """A deliberately broken policy: one-member read and write quorums, so
    disjoint old/new groups cannot intersect."""

    def read_quorum(self, n):
        return 1

    def write_quorum(self, n):
        return 1

    def describe(self):
        return "broken(r=1, w=1)"


def test_quorum_intersection_silent_without_a_policy():
    monitor = QuorumIntersectionMonitor()
    marker = reconfig_marker("joint-begin", 1, old="s1,s2,s3", new="s1,s2,s4")
    assert monitor.observe(marker, 0) is None


def test_quorum_intersection_accepts_majority_quorums():
    from repro.txn.placement import quorum_policy

    monitor = QuorumIntersectionMonitor()
    monitor.set_quorum_policy(quorum_policy("majority"))
    marker = reconfig_marker("joint-begin", 1, old="s1,s2,s3", new="s1,s2,s4")
    assert monitor.observe(marker, 0) is None


def test_quorum_intersection_flags_a_broken_policy():
    monitor = QuorumIntersectionMonitor()
    monitor.set_quorum_policy(_DisjointPolicy())
    marker = reconfig_marker("cns-joint-begin", 2, old="s1,s2", new="s3,s4")
    message = monitor.observe(marker, 0)
    assert message is not None and "read quorum" in message


# ----------------------------------------------------------------------
# At most one config in flight
# ----------------------------------------------------------------------
def test_config_in_flight_accepts_strict_alternation():
    monitor = ConfigInFlightMonitor()
    sequence = [
        reconfig_marker("joint-begin", 1),
        reconfig_marker("commit", 1),
        reconfig_marker("cns-joint-begin", 2),
        reconfig_marker("cns-commit", 2),
    ]
    for i, marker in enumerate(sequence):
        assert monitor.observe(marker, i) is None


def test_config_in_flight_flags_overlapping_changes():
    monitor = ConfigInFlightMonitor()
    assert monitor.observe(reconfig_marker("joint-begin", 1), 0) is None
    message = monitor.observe(reconfig_marker("cns-joint-begin", 2), 1)
    assert message is not None and "still in flight" in message


def test_config_in_flight_flags_a_commit_without_begin():
    monitor = ConfigInFlightMonitor()
    message = monitor.observe(reconfig_marker("commit", 1), 0)
    assert message is not None and "without a joint-begin" in message


# ----------------------------------------------------------------------
# Suite behaviour: alerts, indices, halting
# ----------------------------------------------------------------------
def test_suite_reports_the_exact_offending_trace_index():
    """The acceptance-criterion shape: a seeded violation is alerted at the
    first offending trace index, with a bounded causal suffix attached."""
    trace = Trace()
    suite = watch_trace(trace)
    trace.append(leader("m1", 7))
    trace.append(internal("m1", consensus="candidacy", term=8, member="m1"))
    offending = trace.append(leader("m2", 7))  # duplicate leader for term 7
    assert len(suite.alerts) == 1
    alert = suite.alerts[0]
    assert alert.monitor == "election-safety"
    assert alert.trace_index == offending.index == 2
    assert alert.actor == "m2"
    assert alert.suffix  # carries the causal suffix, newest last
    assert "m2" in alert.suffix[-1] or "became-leader" in alert.suffix[-1]
    assert not suite.ok
    with pytest.raises(InvariantViolationError):
        suite.assert_ok()


def test_halt_on_violation_raises_out_of_append():
    trace = Trace()
    suite = MonitorSuite(halt_on_violation=True)
    watch_trace(trace, suite)
    trace.append(leader("m1", 1))
    with pytest.raises(InvariantViolationError) as excinfo:
        trace.append(leader("m2", 1))
    violation = excinfo.value.violation
    assert violation.monitor == "election-safety"
    assert violation.trace_index == 1
    assert violation.describe().startswith("[election-safety]")


def test_suite_suffix_window_is_bounded():
    trace = Trace()
    suite = MonitorSuite(suffix_window=4)
    watch_trace(trace, suite)
    for term in range(1, 10):
        trace.append(leader("m1", term))
    trace.append(leader("m2", 9))
    assert len(suite.alerts) == 1
    assert len(suite.alerts[0].suffix) == 4


def test_watch_trace_replays_already_retained_actions():
    trace = Trace()
    trace.append(leader("m1", 1))
    trace.append(leader("m2", 1))  # violation already in the trace
    suite = watch_trace(trace)
    assert len(suite.alerts) == 1
    assert suite.alerts[0].trace_index == 1


def test_default_monitors_are_fresh_instances():
    a, b = default_monitors(), default_monitors()
    assert {m.name for m in a} == {
        "election-safety",
        "log-matching",
        "quorum-intersection",
        "config-in-flight",
        "lease-safety",
    }
    assert all(x is not y for x, y in zip(a, b))


# ----------------------------------------------------------------------
# Live runs
# ----------------------------------------------------------------------
def test_clean_consensus_run_trips_no_monitor():
    handle, plane = run_observed(
        "algorithm-b",
        monitors=True,
        scheduler=FIFOScheduler(),
        replication_factor=3,
        quorum="majority",
        consensus_factor=3,
    )
    suite = plane.monitors
    assert suite.ok
    assert "monitors ok" in suite.describe()
    # the suite saw every appended action of the run
    assert suite._seen == len(handle.trace())


def test_forged_duplicate_leader_on_a_live_trace_is_alerted_at_its_index():
    """Inject the violation into a real finished run's trace: the alert must
    carry the forged action's true stamped index."""
    handle, plane = run_observed(
        "algorithm-b",
        monitors=True,
        scheduler=FIFOScheduler(),
        replication_factor=3,
        quorum="majority",
        consensus_factor=3,
    )
    suite = plane.monitors
    assert suite.ok  # a FIFO run designates its leader without an election
    handle.simulation.trace.append(leader("forged-a", 999))
    assert suite.ok  # first leader of term 999: no violation yet
    forged = handle.simulation.trace.append(leader("forged-b", 999))
    assert len(suite.alerts) == 1
    assert suite.alerts[0].trace_index == forged.index == len(handle.trace()) - 1
    # online/offline parity on the injected violation: the post-mortem
    # checker rejects the same trace ...
    with pytest.raises(AssertionError, match="term 999"):
        invariants.check_all(handle)
    # ... so unregister the deliberately poisoned handle before the autouse
    # teardown re-checks it.
    invariants.reset()


def test_build_wires_the_quorum_policy_into_the_suite():
    handle, plane = run_observed(
        "algorithm-b",
        monitors=True,
        scheduler=FIFOScheduler(),
        replication_factor=3,
        quorum="majority",
    )
    quorum_monitors = [
        m for m in plane.monitors.monitors if isinstance(m, QuorumIntersectionMonitor)
    ]
    assert quorum_monitors and quorum_monitors[0]._policy is not None
