"""The opt-in wall-clock profiler: buckets populate, results stay out of
deterministic artifacts (the trace-invisibility half is pinned by the
golden-signature suite)."""

from __future__ import annotations

from repro.obs import KernelProfiler

from tests.obs.conftest import run_observed


def test_profiled_run_populates_the_kernel_buckets():
    handle, plane = run_observed("algorithm-b", profile=True, num_objects=2)
    profiler = plane.profiler
    assert profiler is not None
    assert set(profiler.buckets()) >= {"choose", "dispatch", "poll", "trace_append"}
    # the append shim was installed before the first action landed
    assert profiler.count("trace_append") == len(handle.trace())
    assert profiler.count("dispatch") > 0
    assert profiler.total_seconds() > 0.0
    for bucket in profiler.buckets():
        assert profiler.count(bucket) > 0
        assert profiler.seconds(bucket) >= 0.0


def test_unprofiled_plane_has_no_profiler():
    handle, plane = run_observed("algorithm-b", profile=False, num_objects=2)
    assert plane.profiler is None
    assert handle.simulation._profiler is None


def test_as_dict_and_report_render():
    profiler = KernelProfiler()
    profiler.add("dispatch", 0.25)
    profiler.add("dispatch", 0.75)
    profiler.add("poll", 1.0)
    assert profiler.as_dict() == {
        "dispatch": {"count": 2, "seconds": 1.0},
        "poll": {"count": 1, "seconds": 1.0},
    }
    assert profiler.count("dispatch") == 2
    assert profiler.seconds("missing") == 0.0
    report = profiler.report(steps=100)
    assert report.startswith("kernel profile (wall clock):")
    assert "dispatch" in report and "events/sec" in report
    # no steps, no throughput line
    assert "events/sec" not in profiler.report(steps=0)


def test_plane_describe_includes_the_profile_only_when_enabled():
    _, profiled = run_observed("algorithm-b", profile=True, num_objects=2)
    assert "kernel profile (wall clock):" in profiled.describe()
    _, plain = run_observed("algorithm-b", profile=False, num_objects=2)
    assert "kernel profile" not in plain.describe()
