"""Shared helpers for the observability-plane tests.

``run_observed`` is :func:`tests.replication.conftest.run_fixed_workload`
with a fresh :class:`~repro.obs.ObservabilityPlane` attached — the fixed
explicit-id workload (W1/R1/W2/R2) keeps signatures, span trees and
registry snapshots comparable across runs (transaction ids come from a
process-global counter, so anything unpinned would differ run to run).

The autouse fixture applies the shared safety-invariant checker to every
run of this suite, same as the replication/consensus suites do.
"""

from __future__ import annotations

import pytest

from repro.obs import ObservabilityPlane

from tests import invariants
from tests.replication.conftest import run_fixed_workload


@pytest.fixture(autouse=True)
def invariant_autocheck():
    """Apply the shared safety-invariant checker to every run of this suite."""
    invariants.reset()
    yield
    invariants.check_registered()


def run_observed(
    protocol_name: str,
    profile: bool = False,
    monitors=None,
    health=None,
    **kwargs,
):
    """Run the fixed workload with a fresh plane; returns ``(handle, plane)``.

    ``monitors``/``health`` thread through to :class:`ObservabilityPlane`
    (``True`` for defaults, or a pre-built suite/policy/plane)."""
    plane = ObservabilityPlane(profile=profile, monitors=monitors, health=health)
    handle = run_fixed_workload(protocol_name, obs=plane, **kwargs)
    return handle, plane
