"""Exporters: Chrome trace-event JSON shape and the text timeline."""

from __future__ import annotations

import json

import pytest

from repro.ioa import FIFOScheduler
from repro.obs import (
    chrome_trace_events,
    chrome_trace_json,
    derive_spans,
    render_timeline,
    write_chrome_trace,
)

from tests.replication.conftest import run_fixed_workload


@pytest.fixture(scope="module")
def tree():
    handle = run_fixed_workload("algorithm-b", scheduler=FIFOScheduler(), num_objects=2)
    return derive_spans(handle.simulation)


def test_chrome_payload_structure(tree):
    payload = chrome_trace_events(tree)
    events = payload["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(tree.spans)
    assert len(starts) == len(finishes) == len(tree.edges)
    # Perfetto drops dur=0 slices, so point spans get unit width
    assert all(e["dur"] >= 1 for e in complete)
    assert all(e["args"]["span_id"] for e in complete)
    # flow ids are edge positions (cross-run stable), f-side binds enclosing
    assert {e["id"] for e in starts} == set(range(len(tree.edges)))
    assert {e["id"] for e in finishes} == set(range(len(tree.edges)))
    assert all(e["bp"] == "e" for e in finishes)
    # every actor renders as a named lane
    lanes = {e["tid"]: e["args"]["name"] for e in metadata}
    actors = {s.actor for s in tree.spans}
    actors |= {e.src for e in tree.edges} | {e.dst for e in tree.edges}
    assert set(lanes.values()) == actors
    other = payload["otherData"]
    assert other["clock"] == "trace-index"
    assert other["spans"] == len(tree.spans)
    assert other["causal_edges"] == len(tree.edges)
    assert other["undelivered_messages"] == tree.undelivered


def test_events_are_deterministically_ordered(tree):
    events = chrome_trace_events(tree)["traceEvents"]
    keys = [(e.get("ts", -1), e["ph"], e["tid"], e["name"]) for e in events]
    assert keys == sorted(keys)


def test_chrome_json_round_trips_and_writes(tmp_path, tree):
    text = chrome_trace_json(tree)
    assert json.loads(text) == chrome_trace_events(tree)
    out = write_chrome_trace(tree, tmp_path / "timeline.json")
    assert out == tmp_path / "timeline.json"
    assert json.loads(out.read_text(encoding="utf-8")) == chrome_trace_events(tree)


def test_render_timeline_shows_the_span_forest(tree):
    text = render_timeline(tree)
    lines = text.splitlines()
    assert lines[0].startswith(f"timeline: {len(tree.spans)} spans")
    assert any("txn" in line and "W1" in line for line in lines)
    assert any("round" in line for line in lines)


def test_render_timeline_truncates_at_max_spans(tree):
    assert len(tree.spans) > 2
    short = render_timeline(tree, max_spans=2)
    assert "more spans)" in short.splitlines()[-1]
