"""Unit tests of the kernel metrics registry (no simulation involved)."""

from __future__ import annotations

import json
import math

from repro.obs import MetricsRegistry


def test_counter_labels_and_totals():
    registry = MetricsRegistry()
    registry.counter("kernel.events", kind="send").inc()
    registry.counter("kernel.events", kind="send").inc(2)
    registry.counter("kernel.events", kind="recv").inc()
    assert registry.counter_value("kernel.events", kind="send") == 3
    assert registry.counter_value("kernel.events", kind="recv") == 1
    assert registry.counter_total("kernel.events") == 4
    # label order never matters: one instrument per label *set*
    registry.counter("m", a=1, b=2).inc()
    assert registry.counter("m", b=2, a=1).value == 1


def test_counter_value_defaults_to_zero_when_never_touched():
    registry = MetricsRegistry()
    assert registry.counter_value("never", kind="x") == 0
    assert registry.counter_total("never") == 0


def test_gauge_set_inc_dec_and_max_watermark():
    registry = MetricsRegistry()
    gauge = registry.gauge("kernel.mailbox_depth", automaton="s1")
    gauge.inc()
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert gauge.value == 2
    assert gauge.max_value == 3  # the watermark survives the drain
    gauge.set(1)
    assert (gauge.value, gauge.max_value) == (1, 3)
    assert registry.gauge_value("kernel.mailbox_depth", automaton="s1") == 1
    assert registry.gauge_max("kernel.mailbox_depth", automaton="s1") == 3
    assert registry.gauge_value("kernel.mailbox_depth", automaton="s2") is None
    assert registry.gauge_max("other") is None


def test_histogram_summary_is_nearest_rank():
    registry = MetricsRegistry()
    histogram = registry.histogram("rtt")
    for value in (5, 1, 9, 3, 7):
        histogram.observe(value)
    assert registry.histogram_values("rtt") == (5.0, 1.0, 9.0, 3.0, 7.0)
    summary = histogram.summary()
    assert summary == {
        "count": 5,
        "sum": 25.0,
        "min": 1.0,
        "max": 9.0,
        "p50": 5.0,
        "p95": 9.0,
    }


def test_empty_histogram_summary_and_reads():
    registry = MetricsRegistry()
    assert registry.histogram("rtt").summary() == {"count": 0}
    assert registry.histogram_values("untouched") == ()
    assert "rtt: n=0" in registry.describe()


def test_snapshot_is_sorted_and_json_serialisable():
    registry = MetricsRegistry()
    registry.counter("z.last", kind="b").inc()
    registry.counter("a.first").inc(4)
    registry.counter("z.last", kind="a").inc(2)
    registry.gauge("depth", automaton="s1").set(7)
    registry.histogram("lat").observe(3)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["counters", "gauges", "histograms"]
    assert list(snapshot["counters"]) == ["a.first", "z.last{kind=a}", "z.last{kind=b}"]
    assert snapshot["counters"]["z.last{kind=b}"] == 1
    assert snapshot["gauges"]["depth{automaton=s1}"] == {"value": 7, "max": 7}
    assert snapshot["histograms"]["lat"]["count"] == 1
    json.dumps(snapshot)  # plain data all the way down


def test_describe_renders_every_instrument():
    registry = MetricsRegistry()
    registry.counter("events", kind="send").inc(2)
    registry.gauge("depth").set(1)
    registry.histogram("lat").observe(4)
    text = registry.describe()
    assert "events{kind=send} = 2" in text
    assert "depth = 1 (max 1)" in text
    assert "lat: n=1 min=4 p50=4 p95=4 max=4" in text


def test_registry_percentile_handles_degenerate_inputs():
    from repro.obs.registry import _percentile

    assert math.isnan(_percentile([], 0.5))
    for fraction in (0.01, 0.5, 0.95, 1.0):
        assert _percentile([7.0], fraction) == 7.0
