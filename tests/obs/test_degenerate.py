"""Degenerate inputs: empty percentiles, zero-transaction runs, lossy runs.

The ISSUE's satellite: the metrics and span paths must behave sensibly at
the boundaries the sweeps never exercise — nothing submitted, nothing
delivered, nothing observed.
"""

from __future__ import annotations

import math

from repro.analysis.metrics import AggregateStats, collect_metrics, percentile
from repro.ioa import FIFOScheduler
from repro.obs import chrome_trace_events, derive_spans, render_timeline

from tests.conftest import build_system
from tests.replication.conftest import run_fixed_workload


def test_percentile_of_empty_input_is_nan():
    assert math.isnan(percentile([], 0.5))
    assert math.isnan(percentile((), 0.95))


def test_percentile_of_a_singleton_is_that_value():
    for fraction in (0.01, 0.5, 0.95, 1.0):
        assert percentile([7.0], fraction) == 7.0


def test_registry_percentile_stays_in_sync_with_analysis_percentile():
    """The registry duplicates nearest-rank locally (so the kernel side never
    imports the analysis layer); the two must never drift apart."""
    from repro.obs.registry import _percentile

    cases = ([], [3.0], [5.0, 1.0, 9.0], [float(v) for v in range(1, 11)])
    for values in cases:
        for fraction in (0.01, 0.5, 0.95, 1.0):
            ours = _percentile(sorted(values), fraction)
            theirs = percentile(values, fraction)
            assert (math.isnan(ours) and math.isnan(theirs)) or ours == theirs


def test_aggregate_stats_over_no_values():
    stats = AggregateStats.from_values([])
    assert stats.count == 0
    assert math.isnan(stats.mean)
    assert stats.describe() == "n=0"


def test_collect_metrics_on_a_zero_transaction_run():
    handle = build_system("algorithm-b", num_objects=2)
    handle.run()  # nothing submitted: the kernel goes idle immediately
    metrics = collect_metrics(handle.simulation, protocol_name="algorithm-b")
    assert metrics.transactions == ()
    assert metrics.read_rounds.count == 0
    assert math.isnan(metrics.read_latency_steps.mean)
    assert metrics.max_read_rounds() == 0
    assert metrics.describe()  # renders without raising


def test_span_derivation_on_a_zero_transaction_run():
    handle = build_system("algorithm-b", num_objects=2)
    handle.run()
    tree = derive_spans(handle.simulation)
    assert tree.of_kind("txn") == ()
    assert render_timeline(tree).startswith("timeline: ")
    chrome_trace_events(tree)  # exports an (almost) empty payload fine


def test_zero_span_chrome_export_is_valid_json_on_disk(tmp_path):
    """The Perfetto exporter with *nothing* to export: the written file must
    still be a loadable JSON object with the standard envelope."""
    import json

    from repro.obs import write_chrome_trace

    handle = build_system("algorithm-b", num_objects=2)
    handle.run()
    out = tmp_path / "empty.timeline.json"
    write_chrome_trace(derive_spans(handle.simulation), out)
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert isinstance(payload["traceEvents"], list)
    assert payload["otherData"]["undelivered_messages"] == 0


def test_ring_trace_shorter_than_one_transaction():
    """A flight recorder smaller than a single transaction's action count:
    spans and metrics must degrade gracefully, never crash."""
    from repro.ioa import TraceMode
    from repro.obs import render_timeline as render

    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=FIFOScheduler(),
        num_objects=2,
        trace_mode=TraceMode.ring(5),
    )
    trace = handle.simulation.trace
    assert len(trace) == 5 and trace.total_appended > 5
    tree = derive_spans(handle.simulation)
    assert render(tree).startswith("timeline: ")
    chrome_trace_events(tree)
    metrics = collect_metrics(handle.simulation, protocol_name="algorithm-b")
    # transaction records live on the simulation, not the trace: the ring
    # forgets records, not outcomes
    assert len(metrics.transactions) == 4
    assert metrics.describe()


def test_spans_with_undelivered_messages_under_a_crash():
    """Messages sent to a crashed automaton are never received: the span
    tree must count them rather than invent edges for them."""
    from repro.faults import ChaosScheduler, coordinator_failover

    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        num_objects=2,
        consensus_factor=3,
        plan=coordinator_failover(leader="coor", at=12, seed=3),
        run_to_completion=False,
    )
    tree = derive_spans(handle.simulation)
    assert tree.undelivered > 0  # sends to the dead leader have no recv
    payload = chrome_trace_events(tree)
    assert payload["otherData"]["undelivered_messages"] == tree.undelivered
    # flow events exist only for *delivered* messages
    starts = [e for e in payload["traceEvents"] if e["ph"] == "s"]
    assert len(starts) == len(tree.edges)
    sends = sum(1 for action in handle.trace() if action.kind.value == "send")
    assert len(tree.edges) == sends - tree.undelivered
