"""Span derivation: transactions, quorum rounds, consensus, reconfiguration.

Every tree here is derived post-mortem (``derive_spans`` is a pure function
of a finished simulation — no plane required), which is exactly how the
failing-test trace dumps in ``tests/conftest.py`` use it.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, coordinator_failover, replace_dead_replica
from repro.ioa import FIFOScheduler
from repro.obs import derive_spans

from tests.replication.conftest import run_fixed_workload


def chaos_fifo():
    return ChaosScheduler(base=FIFOScheduler())


def test_txn_spans_cover_the_fixed_workload():
    handle = run_fixed_workload("algorithm-b", scheduler=FIFOScheduler(), num_objects=2)
    tree = derive_spans(handle.simulation)
    txns = {span.span_id: span for span in tree.of_kind("txn")}
    assert set(txns) == {"txn:W1", "txn:R1", "txn:W2", "txn:R2"}
    for span in txns.values():
        assert span.parent is None
        assert span.get("complete") is True
        assert 0 <= span.start <= span.end < len(handle.trace())
    # txn spans are roots of the forest
    root_ids = {span.span_id for span in tree.roots()}
    assert set(txns) <= root_ids


def test_round_spans_nest_inside_their_transaction():
    handle = run_fixed_workload("algorithm-b", scheduler=FIFOScheduler(), num_objects=2)
    tree = derive_spans(handle.simulation)
    for txn in tree.of_kind("txn"):
        rounds = tree.children(txn)
        assert rounds, f"{txn.span_id} has no quorum-round children"
        for round_span in rounds:
            assert round_span.kind == "round"
            assert round_span.parent == txn.span_id
            assert txn.start <= round_span.start <= round_span.end <= txn.end
            assert round_span.get("sends", 0) >= 1
        # rounds are disjoint and ordered (each starts after the previous)
        starts = [r.start for r in rounds]
        assert starts == sorted(starts)


def test_causal_edges_are_sorted_and_complete_on_reliable_channels():
    handle = run_fixed_workload("algorithm-b", scheduler=FIFOScheduler(), num_objects=2)
    tree = derive_spans(handle.simulation)
    assert tree.edges
    assert tree.undelivered == 0  # reliable channels: every send was received
    keys = [(edge.send_index, edge.recv_index) for edge in tree.edges]
    assert keys == sorted(keys)
    for edge in tree.edges:
        assert edge.send_index < edge.recv_index
        assert edge.msg_type


def test_consensus_apply_spans_are_parented_on_transactions():
    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=chaos_fifo(),
        num_objects=2,
        consensus_factor=3,
        run_to_completion=False,
    )
    tree = derive_spans(handle.simulation)
    applies = tree.of_kind("consensus")
    assert applies
    txn_ids = {span.span_id for span in tree.of_kind("txn")}
    parented = [span for span in applies if span.parent in txn_ids]
    assert parented, "no apply span landed under the transaction it committed"
    for span in applies:
        assert span.duration == 0  # applied entries are point events
        assert span.get("term") is not None


def test_election_spans_under_a_leader_crash():
    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=chaos_fifo(),
        num_objects=2,
        consensus_factor=3,
        plan=coordinator_failover(leader="coor", at=12, seed=3),
        run_to_completion=False,
    )
    tree = derive_spans(handle.simulation)
    wins = [span for span in tree.of_kind("election") if span.get("won")]
    assert wins, "leader crash at cf=3 must produce a re-election span"
    for span in wins:
        assert span.actor != "coor"  # the dead leader cannot win
        assert span.start <= span.end
        assert span.get("term") is not None


def test_reconfig_spans_for_a_committed_membership_change():
    plan, reconfig = replace_dead_replica()
    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=chaos_fifo(),
        num_objects=2,
        replication_factor=3,
        quorum="majority",
        plan=plan,
        reconfig=reconfig,
        run_to_completion=False,
    )
    tree = derive_spans(handle.simulation)
    committed = [
        span for span in tree.of_kind("reconfig") if span.get("committed", True)
    ]
    assert committed, "the replace-dead-replica change must commit"
    for span in committed:
        assert span.start < span.end  # joint window → commit is an interval
        assert span.get("epoch") is not None


def test_tree_navigation_and_signature_shape():
    handle = run_fixed_workload("algorithm-b", scheduler=FIFOScheduler(), num_objects=2)
    tree = derive_spans(handle.simulation)
    assert len(tree) == len(tree.spans)
    assert tree.span("txn:W1") is not None
    assert tree.span("txn:NOPE") is None
    span_rows, edge_rows, undelivered = tree.signature()
    assert len(span_rows) == len(tree.spans)
    assert len(edge_rows) == len(tree.edges)
    assert undelivered == tree.undelivered
    # msg ids never leak into the signature (they differ across runs)
    assert "msg_id" not in repr(tree.signature())
    text = tree.describe()
    assert text.startswith("SpanTree:")
    assert "txn:write W1" in text


@pytest.mark.parametrize("protocol", ("algorithm-a", "eiger", "s2pl"))
def test_span_derivation_works_for_coordinator_free_protocols(protocol):
    handle = run_fixed_workload(protocol, scheduler=FIFOScheduler(), num_objects=2)
    tree = derive_spans(handle.simulation)
    assert len(tree.of_kind("txn")) == 4
    assert tree.of_kind("consensus") == ()
    assert tree.of_kind("reconfig") == ()
