"""The plane's registry agrees with the trace it observed.

The analysis collectors read the registry when a plane is present and walk
the trace otherwise; these tests pin the two paths to *equal* results on
the very same simulation — the registry is a cache of the trace, never a
second source of truth.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.metrics import (
    _collect_consensus_metrics,
    _collect_controller_metrics,
)
from repro.faults import ChaosScheduler, auto_heal
from repro.ioa import FIFOScheduler
from repro.ioa.actions import ActionKind

from tests.obs.conftest import run_observed


def chaos_fifo():
    return ChaosScheduler(base=FIFOScheduler())


def both_collector_paths(collector, simulation, *extra):
    """Run a gated collector through the registry path and the walk path."""
    from_registry = collector(simulation, *extra)
    plane, simulation.obs = simulation.obs, None
    try:
        from_walk = collector(simulation, *extra)
    finally:
        simulation.obs = plane
    return from_registry, from_walk


def test_kernel_event_counters_match_the_trace():
    handle, plane = run_observed("algorithm-b", num_objects=2)
    registry = plane.registry
    trace = handle.trace()
    by_kind = Counter(action.kind.value for action in trace)
    for kind, expected in by_kind.items():
        assert registry.counter_value("kernel.events", kind=kind) == expected
    assert registry.counter_total("kernel.events") == len(trace)
    sends = sum(
        1
        for action in trace
        if action.kind is ActionKind.SEND and action.message is not None
    )
    assert registry.counter_total("kernel.messages_sent") == sends
    assert registry.counter_total("kernel.messages_channel") == sends


def test_message_type_counters_match_the_trace():
    handle, plane = run_observed("algorithm-b", num_objects=2)
    by_type = Counter(
        action.message.msg_type
        for action in handle.trace()
        if action.kind is ActionKind.SEND and action.message is not None
    )
    for msg_type, expected in by_type.items():
        assert (
            plane.registry.counter_value("kernel.messages_sent", type=msg_type)
            == expected
        )


def test_mailbox_depth_gauges_track_the_pending_set():
    handle, plane = run_observed("algorithm-b", num_objects=2)
    simulation = handle.simulation
    still_pending = Counter(d.message.dst for d in simulation.pending_deliveries())
    snapshot = plane.registry.snapshot()
    depths = {
        label: gauge
        for label, gauge in snapshot["gauges"].items()
        if label.startswith("kernel.mailbox_depth")
    }
    assert depths  # every automaton that ever got mail has a gauge
    for label, gauge in depths.items():
        automaton = label.split("automaton=", 1)[1].rstrip("}")
        assert gauge["value"] == still_pending.get(automaton, 0), label
        assert gauge["max"] >= gauge["value"] >= 0


def test_consensus_block_from_registry_equals_trace_walk():
    handle, _plane = run_observed(
        "algorithm-b",
        scheduler=chaos_fifo(),
        num_objects=2,
        consensus_factor=3,
        run_to_completion=False,
    )
    from_registry, from_walk = both_collector_paths(
        _collect_consensus_metrics, handle.simulation
    )
    assert from_registry is not None
    assert from_registry == from_walk
    assert from_registry.entries_applied > 0


def test_consensus_block_parity_holds_with_leases_on():
    """The lease counters and the read-latency histogram extend *both*
    collector paths identically: a leased run's consensus block from the
    registry equals the one from the trace walk, and the lease activity is
    really in it."""
    handle, _plane = run_observed(
        "algorithm-b",
        scheduler=chaos_fifo(),
        num_objects=2,
        consensus_factor=3,
        leases=True,
        run_to_completion=False,
    )
    from_registry, from_walk = both_collector_paths(
        _collect_consensus_metrics, handle.simulation
    )
    assert from_registry is not None
    assert from_registry == from_walk
    assert from_registry.lease_acquisitions >= 1
    assert from_registry.local_reads >= 1
    assert from_registry.lease_read_latency.count == from_registry.local_reads
    assert from_registry.local_read_ratio == 1.0  # every read served locally


def test_controller_block_from_registry_equals_trace_walk():
    plan, policy = auto_heal()
    handle, plane = run_observed(
        "algorithm-b",
        scheduler=chaos_fifo(),
        num_objects=2,
        replication_factor=3,
        quorum="majority",
        plan=plan,
        controller=policy,
        run_to_completion=False,
    )
    from_registry, from_walk = both_collector_paths(
        _collect_controller_metrics, handle.simulation, handle.directory
    )
    assert from_registry is not None
    assert from_registry == from_walk
    assert from_registry.healed >= 1  # the scenario's whole point
    # probe RTTs: one observation per delivered ack, all non-negative
    rtts = plane.registry.histogram_values("controller.probe_rtt")
    assert len(rtts) == from_registry.acks
    assert all(value >= 0 for value in rtts)


def test_chaos_scheduler_counters_populate_under_the_plane():
    plan, policy = auto_heal()
    _handle, plane = run_observed(
        "algorithm-b",
        scheduler=chaos_fifo(),
        num_objects=2,
        replication_factor=3,
        quorum="majority",
        plan=plan,
        controller=policy,
        run_to_completion=False,
    )
    registry = plane.registry
    assert registry.counter_value("scheduler.chaos_steps") > 0
    assert registry.counter_value("scheduler.chaos_ripe_events") > 0
