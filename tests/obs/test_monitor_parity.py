"""Online/offline monitor parity on the chaos-grid configurations.

Part of the ``-m invariants`` gate.  The streaming monitors re-implement the
post-mortem checkers of ``tests/invariants.py`` as incremental automata (and
*share* the quorum-intersection predicate outright), so parity should hold
by construction — these grids pin it empirically on the exact configurations
the consensus chaos grid runs: wherever the offline checker passes a chaotic
run, the online suite attached to the same run raised no alert, and it
demonstrably watched every appended action.

The seeded-violation direction of parity (both sides flag a forged duplicate
leader, the online one at the exact offending index) is pinned in
``tests/obs/test_monitor.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import ChaosScheduler, replace_dead_replica
from repro.faults.plan import CrashEvent
from repro.ioa import FIFOScheduler, RandomScheduler
from repro.obs import ObservabilityPlane
from repro.obs.monitor import ConfigInFlightMonitor, ElectionSafetyMonitor

from tests import invariants
from tests.consensus.conftest import COORDINATOR_PROTOCOLS, leader_crash_plan
from tests.consensus.test_chaos_grid import SCENARIOS, chaos_plan
from tests.replication.conftest import run_fixed_workload

SEEDS = tuple(range(int(os.environ.get("CHAOS_GRID_SEEDS", "3"))))

pytestmark = pytest.mark.invariants


def monitor_of(suite, kind):
    return next(m for m in suite.monitors if isinstance(m, kind))


def run_watched(protocol, seed, plan, **kwargs):
    plane = ObservabilityPlane(monitors=True, health=True)
    handle = run_fixed_workload(
        protocol,
        plan=plan,
        scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
        seed=seed,
        obs=plane,
        run_to_completion=False,
        **kwargs,
    )
    return handle, plane


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_consensus_grid_cell_parity(protocol, scenario, seed):
    """Every consensus chaos-grid cell, with the monitors riding along: the
    offline checker passes (here and again in the autouse fixture) and the
    online suite agrees — no alerts, every appended action observed."""
    handle, plane = run_watched(
        protocol, seed, chaos_plan(scenario, seed), consensus_factor=3
    )
    invariants.check_all(handle)  # offline verdict: clean
    assert plane.monitors.ok, plane.monitors.describe()  # online verdict: clean
    assert plane.monitors._seen == len(handle.trace()), (protocol, scenario, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_failover_election_is_watched_and_clean(seed):
    """A coordinator failover forces a real election; the online election
    monitor must have recorded the new leader (parity is not vacuous) and
    still agree with the offline checker that the run is safe."""
    handle, plane = run_watched(
        "algorithm-b", seed, leader_crash_plan(at=12, seed=seed), consensus_factor=3
    )
    invariants.check_all(handle)
    assert plane.monitors.ok, plane.monitors.describe()
    election = monitor_of(plane.monitors, ElectionSafetyMonitor)
    assert election._leader_of_term, "failover run elected nobody — vacuous parity"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", ("algorithm-b", "occ-double-collect"))
def test_reconfig_under_loss_parity(protocol, seed):
    """The replace-dead-replica reconfiguration under a crash: the joint
    change commits, the config-in-flight automaton walked the full
    begin/commit alternation back to idle, and both verdicts stay clean."""
    _, reconfig = replace_dead_replica("ox", 3, crash_at=8, reconfig_at=30, seed=seed)
    plan = chaos_plan("lossy", seed)
    plan = type(plan)(
        name="lossy-replace",
        drops=plan.drops,
        retry=plan.retry,
        crashes=(CrashEvent(server="sx.3", at=8, recover=None),),
        seed=seed,
    )
    handle, plane = run_watched(
        protocol,
        seed,
        plan,
        replication_factor=3,
        quorum="majority",
        reconfig=reconfig,
    )
    assert handle.directory.group("ox") == ("sx", "sx.2", "sx.4"), (protocol, seed)
    invariants.check_all(handle)
    assert plane.monitors.ok, plane.monitors.describe()
    in_flight = monitor_of(plane.monitors, ConfigInFlightMonitor)
    assert not in_flight._in_flight, "joint change never committed"
    markers = [a for a in handle.trace() if a.get("reconfig") in ("joint-begin", "commit")]
    assert markers, "reconfiguration left no markers — vacuous parity"


def test_clean_fifo_run_parity_across_every_coordinator_protocol():
    """The degenerate cell of the grid — no faults at all — for each
    coordinator protocol, pinned so a monitor that alerts on healthy traffic
    is caught even when the chaos grids are skipped."""
    for protocol in COORDINATOR_PROTOCOLS:
        plane = ObservabilityPlane(monitors=True)
        handle = run_fixed_workload(
            protocol, scheduler=FIFOScheduler(), consensus_factor=3, obs=plane
        )
        invariants.check_all(handle)
        assert plane.monitors.ok, plane.monitors.describe()
        assert plane.monitors._seen == len(handle.trace())
