"""The enabled-plane determinism contract (the ISSUE acceptance criterion).

Two runs of the same configuration — fresh planes, fresh schedulers, same
seeds — must yield identical span-tree signatures, registry snapshots and
exported artifacts, even though process-global counters (msg ids) differ
between the runs.  Nothing wall-clock may leak into any of them.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, coordinator_failover
from repro.ioa import FIFOScheduler, RandomScheduler
from repro.obs import (
    ObservabilityPlane,
    chrome_trace_json,
    derive_spans,
    render_timeline,
)

from tests.obs.conftest import run_observed
from tests.replication.conftest import run_fixed_workload


def artifacts(handle, plane):
    tree = derive_spans(handle.simulation)
    return (
        tree.signature(),
        plane.registry.snapshot(),
        chrome_trace_json(tree),
        render_timeline(tree),
    )


@pytest.mark.parametrize(
    "scheduler_factory",
    [lambda: FIFOScheduler(), lambda: RandomScheduler(seed=11)],
    ids=["fifo", "random11"],
)
def test_same_config_twice_yields_identical_artifacts(scheduler_factory):
    first = artifacts(
        *run_observed("algorithm-b", scheduler=scheduler_factory(), num_objects=2)
    )
    second = artifacts(
        *run_observed("algorithm-b", scheduler=scheduler_factory(), num_objects=2)
    )
    assert first == second


def test_determinism_holds_under_chaos_and_a_leader_crash():
    def run_once():
        return artifacts(
            *run_observed(
                "algorithm-b",
                scheduler=ChaosScheduler(base=FIFOScheduler()),
                num_objects=2,
                consensus_factor=3,
                plan=coordinator_failover(leader="coor", at=12, seed=3),
                run_to_completion=False,
            )
        )

    assert run_once() == run_once()


def test_profiling_never_perturbs_the_deterministic_artifacts():
    """A profiled run and an unprofiled run export the very same artifacts —
    wall clock exists only in the profiler's own report."""
    profiled_handle, profiled_plane = run_observed(
        "algorithm-b", profile=True, scheduler=FIFOScheduler(), num_objects=2
    )
    plain_handle, plain_plane = run_observed(
        "algorithm-b", profile=False, scheduler=FIFOScheduler(), num_objects=2
    )
    assert artifacts(profiled_handle, profiled_plane) == artifacts(
        plain_handle, plain_plane
    )


def test_span_derivation_is_idempotent():
    handle, _plane = run_observed("algorithm-b", num_objects=2)
    assert (
        derive_spans(handle.simulation).signature()
        == derive_spans(handle.simulation).signature()
    )


def test_a_plane_observes_exactly_one_simulation():
    plane = ObservabilityPlane()
    run_fixed_workload("algorithm-b", obs=plane, num_objects=2)
    with pytest.raises(ValueError, match="exactly one simulation"):
        run_fixed_workload("algorithm-b", obs=plane, num_objects=2)
