"""Unit tests for the semantic strict-serializability checker."""

from __future__ import annotations

import pytest

from repro.core.serializability import check_strict_serializability
from repro.txn.history import History, HistoryEntry
from repro.txn.transactions import ReadResult, WRITE_OK, read, write


def entry(txn, client, invoke, respond, result=None):
    return HistoryEntry(txn=txn, client=client, invoke_index=invoke, respond_index=respond, result=result)


def history(entries, objects=("ox", "oy"), initial=0):
    return History(entries, objects=objects, initial_value=initial)


def rr(**values):
    return ReadResult.from_mapping(values)


class TestAcceptedHistories:
    def test_empty_history(self):
        result = check_strict_serializability(history([]))
        assert result.ok
        assert result.witness_order == ()

    def test_single_read_of_initial_values(self):
        h = history([entry(read("ox", "oy", txn_id="R1"), "r", 0, 1, rr(ox=0, oy=0))])
        assert check_strict_serializability(h).ok

    def test_write_then_read_sequential(self):
        h = history(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w", 0, 1, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r", 2, 3, rr(ox=1, oy=1)),
            ]
        )
        result = check_strict_serializability(h)
        assert result.ok
        assert result.witness_order == ("W1", "R1")

    def test_concurrent_read_may_see_old_or_new(self):
        for observed in (rr(ox=0, oy=0), rr(ox=1, oy=1)):
            h = history(
                [
                    entry(write(ox=1, oy=1, txn_id="W1"), "w", 0, 5, WRITE_OK),
                    entry(read("ox", "oy", txn_id="R1"), "r", 1, 4, observed),
                ]
            )
            assert check_strict_serializability(h).ok

    def test_two_writers_and_interleaved_reads(self):
        h = history(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w1", 0, 1, WRITE_OK),
                entry(write(ox=2, oy=2, txn_id="W2"), "w2", 2, 3, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r1", 4, 5, rr(ox=2, oy=2)),
                entry(read("ox", txn_id="R2"), "r2", 4, 6, rr(ox=2)),
            ]
        )
        assert check_strict_serializability(h).ok

    def test_partial_object_writes(self):
        h = history(
            [
                entry(write(ox=1, txn_id="W1"), "w1", 0, 1, WRITE_OK),
                entry(write(oy=5, txn_id="W2"), "w2", 2, 3, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r", 4, 5, rr(ox=1, oy=5)),
            ]
        )
        assert check_strict_serializability(h).ok

    def test_incomplete_transactions_are_ignored(self):
        h = history(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w", 0, None, None),
                entry(read("ox", "oy", txn_id="R1"), "r", 2, 3, rr(ox=0, oy=0)),
            ]
        )
        assert check_strict_serializability(h).ok

    def test_witness_order_respects_real_time(self):
        h = history(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w", 0, 1, WRITE_OK),
                entry(write(ox=2, oy=2, txn_id="W2"), "w", 2, 3, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r", 4, 5, rr(ox=2, oy=2)),
            ]
        )
        result = check_strict_serializability(h)
        assert result.ok
        assert result.witness_order.index("W1") < result.witness_order.index("W2")
        assert result.witness_order.index("W2") < result.witness_order.index("R1")


class TestRejectedHistories:
    def test_fractured_read_rejected(self):
        """A read that sees a write on one object but not the other."""
        h = history(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w", 0, 1, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r", 2, 3, rr(ox=1, oy=0)),
            ]
        )
        result = check_strict_serializability(h)
        assert not result.ok
        assert result.violations

    def test_stale_read_after_write_rejected(self):
        h = history(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w", 0, 1, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r", 2, 3, rr(ox=0, oy=0)),
            ]
        )
        assert not check_strict_serializability(h).ok

    def test_read_going_backwards_rejected(self):
        """Two sequential reads must not observe versions in reverse order."""
        h = history(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w", 0, 10, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r1", 1, 2, rr(ox=1, oy=1)),
                entry(read("ox", "oy", txn_id="R2"), "r2", 3, 4, rr(ox=0, oy=0)),
            ]
        )
        assert not check_strict_serializability(h).ok

    def test_value_from_nowhere_rejected(self):
        h = history(
            [
                entry(read("ox", txn_id="R1"), "r", 0, 1, rr(ox=99)),
            ]
        )
        result = check_strict_serializability(h)
        assert not result.ok
        assert any("no WRITE transaction produced" in v for v in result.violations)

    def test_read_of_future_write_rejected(self):
        """A read that completes before the write is invoked cannot see its value."""
        h = history(
            [
                entry(read("ox", "oy", txn_id="R1"), "r", 0, 1, rr(ox=1, oy=1)),
                entry(write(ox=1, oy=1, txn_id="W1"), "w", 2, 3, WRITE_OK),
            ]
        )
        assert not check_strict_serializability(h).ok

    def test_eiger_style_mixed_versions_rejected(self):
        """The Figure 5 anomaly expressed directly as a history."""
        h = history(
            [
                entry(write(oy="b1", txn_id="W1"), "w1", 0, 1, WRITE_OK),
                entry(write(oy="b2", txn_id="W2"), "w1", 2, 3, WRITE_OK),
                entry(write(ox="a3", txn_id="W3"), "w2", 4, 5, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r", 1, 6, rr(ox="a3", oy="b1")),
            ],
            initial="init",
        )
        result = check_strict_serializability(h)
        assert not result.ok

    def test_diagnosis_mentions_version_mixing(self):
        h = history(
            [
                entry(write(oy="b1", txn_id="W1"), "w1", 0, 1, WRITE_OK),
                entry(write(oy="b2", txn_id="W2"), "w1", 2, 3, WRITE_OK),
                entry(write(ox="a3", txn_id="W3"), "w2", 4, 5, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r", 1, 6, rr(ox="a3", oy="b1")),
            ],
            initial="init",
        )
        result = check_strict_serializability(h)
        assert any("mixes versions" in v or "no total order" in v for v in result.violations)

    def test_describe_formats(self):
        good = check_strict_serializability(history([]))
        assert "strictly serializable" in good.describe()
        bad = check_strict_serializability(
            history([entry(read("ox", txn_id="R1"), "r", 0, 1, rr(ox=5))])
        )
        assert "NOT" in bad.describe()


class TestSearchBehaviour:
    def test_state_memoisation_handles_commuting_writes(self):
        """Many concurrent writers with identical values do not blow up the search."""
        entries = []
        for index in range(6):
            entries.append(entry(write(ox=1, txn_id=f"W{index}"), f"w{index}", 0, 20, WRITE_OK))
        entries.append(entry(read("ox", txn_id="R1"), "r", 21, 22, rr(ox=1)))
        h = history(entries, objects=("ox",))
        result = check_strict_serializability(h)
        assert result.ok

    def test_max_states_aborts_gracefully(self):
        entries = [
            entry(write(ox=i, txn_id=f"W{i}"), f"w{i}", 0, 50, WRITE_OK) for i in range(6)
        ]
        entries.append(entry(read("ox", txn_id="R1"), "r", 0, 50, rr(ox=3)))
        h = history(entries, objects=("ox",))
        result = check_strict_serializability(h, max_states=3)
        assert not result.ok
        assert any("aborted" in v for v in result.violations)
