"""Unit tests for the N/O/W property checkers and the aggregate SNOW report."""

from __future__ import annotations

import pytest

from repro.core.snow import (
    ReadTransactionReport,
    SnowReport,
    blocking_servers_for,
    check_snow,
    round_trips_per_server,
    versions_in_replies,
)
from repro.ioa import FIFOScheduler, RandomScheduler
from tests.conftest import build_system, run_simple_workload


class TestReadTransactionReport:
    def test_one_round_one_version(self):
        report = ReadTransactionReport(
            txn_id="R1",
            reader="r1",
            non_blocking=True,
            blocking_servers=(),
            rounds=1,
            round_trips_per_server={"sx": 1, "sy": 1},
            max_versions_in_reply=1,
        )
        assert report.one_round
        assert report.one_version
        assert report.satisfies_o

    def test_two_rounds_not_one_round(self):
        report = ReadTransactionReport(
            txn_id="R1",
            reader="r1",
            non_blocking=True,
            blocking_servers=(),
            rounds=2,
            round_trips_per_server={"sx": 2},
            max_versions_in_reply=1,
        )
        assert not report.one_round

    def test_multi_version_not_one_version(self):
        report = ReadTransactionReport(
            txn_id="R1",
            reader="r1",
            non_blocking=True,
            blocking_servers=(),
            rounds=1,
            round_trips_per_server={"sx": 1},
            max_versions_in_reply=3,
        )
        assert report.one_round and not report.one_version


class TestSnowReportFlags:
    def make(self, **overrides):
        defaults = dict(
            strict_serializable=True,
            non_blocking=True,
            one_round=True,
            one_version=True,
            writes_complete=True,
            conflicting_writes_present=True,
        )
        defaults.update(overrides)
        return SnowReport(**defaults)

    def test_full_snow(self):
        report = self.make()
        assert report.satisfies_snow
        assert report.property_string() == "SNOW"

    def test_missing_s(self):
        report = self.make(strict_serializable=False)
        assert not report.satisfies_snow
        assert report.property_string() == "sNOW"

    def test_missing_o_via_rounds(self):
        report = self.make(one_round=False)
        assert report.property_string() == "SNoW"
        assert report.satisfies_snw

    def test_missing_n(self):
        report = self.make(non_blocking=False)
        assert report.property_string() == "SnOW"

    def test_missing_w(self):
        report = self.make(writes_complete=False)
        assert report.property_string() == "SNOw"
        assert not report.satisfies_w


class TestTraceLevelCheckers:
    def test_algorithm_a_is_non_blocking_one_round_one_version(self):
        handle = build_system("algorithm-a", num_writers=2)
        read_ids, _ = run_simple_workload(handle, rounds=2)
        trace = handle.trace()
        servers = handle.servers
        for read_id in read_ids:
            assert blocking_servers_for(trace, read_id, handle.readers[0], servers) == ()
            trips = round_trips_per_server(trace, read_id, handle.readers[0], servers)
            assert all(count == 1 for count in trips.values())
            max_versions, replies = versions_in_replies(trace, read_id, handle.readers[0], servers)
            assert max_versions == 1
            assert replies == len(handle.objects)

    def test_algorithm_b_uses_two_requests_at_coordinator(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        read_ids, _ = run_simple_workload(handle, rounds=1)
        trips = round_trips_per_server(handle.trace(), read_ids[0], handle.readers[0], handle.servers)
        # coordinator (first server) answers both the tag-array and the value request
        assert trips[handle.servers[0]] == 2
        assert trips[handle.servers[1]] == 1

    def test_algorithm_c_replies_carry_multiple_versions(self):
        handle = build_system("algorithm-c", num_readers=1, num_writers=2)
        read_ids, _ = run_simple_workload(handle, rounds=2)
        max_versions, _ = versions_in_replies(
            handle.trace(), read_ids[-1], handle.readers[0], handle.servers
        )
        assert max_versions > 1

    def test_blocking_protocol_flagged_by_n_checker(self):
        handle = build_system("s2pl", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=11))
        run_simple_workload(handle, rounds=2)
        report = check_snow(handle.simulation, handle.history())
        assert not report.non_blocking or report.satisfies_snow is False
        # With contention under a random schedule some read must have been deferred.
        assert any(not r.non_blocking for r in report.read_reports) or report.non_blocking


class TestAggregateCheck:
    def test_check_snow_on_algorithm_a(self):
        handle = build_system("algorithm-a", num_writers=2)
        run_simple_workload(handle, rounds=2)
        report = check_snow(handle.simulation, handle.history())
        assert report.satisfies_snow
        assert report.max_rounds() == 1
        assert report.max_versions() == 1
        assert report.conflicting_writes_present in (True, False)

    def test_check_snow_detects_missing_o_for_b(self):
        handle = build_system("algorithm-b", num_readers=2, num_writers=2)
        run_simple_workload(handle, rounds=2)
        report = check_snow(handle.simulation, handle.history())
        assert report.property_string() == "SNoW"
        assert report.max_rounds() == 2

    def test_check_snow_detects_multi_version_for_c(self):
        handle = build_system("algorithm-c", num_readers=2, num_writers=2)
        run_simple_workload(handle, rounds=2)
        report = check_snow(handle.simulation, handle.history())
        assert report.satisfies_snw
        assert not report.one_version

    def test_report_describe_lists_reads(self):
        handle = build_system("algorithm-a", num_writers=1)
        read_ids, _ = run_simple_workload(handle, rounds=1)
        report = check_snow(handle.simulation, handle.history())
        text = report.describe()
        assert "SNOW report" in text
        assert read_ids[0] in text

    def test_incomplete_write_breaks_w(self):
        handle = build_system("algorithm-a", num_writers=1)
        handle.submit_write({"ox": 1, "oy": 1}, writer="w1")
        # Never run the simulation to completion: stop after a few steps.
        handle.simulation.run(max_new_steps=3)
        report = check_snow(handle.simulation, handle.history())
        assert not report.writes_complete
        assert not report.satisfies_snow
