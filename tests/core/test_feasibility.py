"""Tests for the Figure 1(a)/1(b) feasibility analyses."""

from __future__ import annotations

import pytest

from repro.core.feasibility import (
    bounded_snw_matrix,
    check_setting,
    find_violation_in_impossible_cell,
    format_bounded_snw_matrix,
    format_feasibility_matrix,
    paper_expectation,
    run_protocol_once,
    verify_possible_cell,
)
from repro.ioa import FIFOScheduler
from repro.ioa.network import SystemSetting, standard_settings


def setting(name, readers, writers, c2c, servers=2):
    return SystemSetting(name, num_readers=readers, num_writers=writers, num_servers=servers, c2c=c2c)


class TestPaperExpectation:
    def test_mwsr_with_c2c_possible(self):
        possible, reference = paper_expectation(setting("mwsr", 1, 3, True))
        assert possible
        assert "Theorem 3" in reference

    def test_mwsr_without_c2c_impossible(self):
        possible, reference = paper_expectation(setting("mwsr", 1, 3, False))
        assert not possible
        assert "Theorem 2" in reference or "5.1" in reference

    def test_two_clients_follow_mwsr_rule(self):
        assert paper_expectation(setting("two", 1, 1, True))[0]
        assert not paper_expectation(setting("two", 1, 1, False))[0]

    def test_three_clients_impossible_even_with_c2c(self):
        possible, reference = paper_expectation(setting("three", 2, 1, True))
        assert not possible
        assert "Theorem 1" in reference

    def test_single_server_trivially_possible(self):
        assert paper_expectation(setting("one-server", 2, 1, False, servers=1))[0]


class TestPossibleCells:
    def test_two_client_c2c_cell_verified(self):
        verdict = verify_possible_cell(setting("two-clients-c2c", 1, 1, True), schedules=4, workload_rounds=2)
        assert verdict.snow_possible
        assert verdict.protocol == "algorithm-a"
        assert verdict.schedules_checked == 4

    def test_mwsr_c2c_cell_verified(self):
        verdict = verify_possible_cell(setting("mwsr-c2c", 1, 3, True), schedules=3, workload_rounds=2)
        assert verdict.snow_possible

    def test_run_protocol_once_reports_snow(self):
        report = run_protocol_once("algorithm-a", setting("mwsr-c2c", 1, 2, True), FIFOScheduler(), 2, 0)
        assert report.satisfies_snow


class TestImpossibleCells:
    def test_three_client_violation_found(self):
        verdict = find_violation_in_impossible_cell(setting("three-clients-no-c2c", 2, 1, False), schedules=20)
        assert not verdict.snow_possible
        assert verdict.method in ("targeted-adversary", "randomized-search")

    def test_mwsr_no_c2c_violation_found(self):
        verdict = find_violation_in_impossible_cell(setting("mwsr-no-c2c", 1, 2, False), schedules=20)
        assert not verdict.snow_possible

    def test_check_setting_dispatches_by_expectation(self):
        possible = check_setting(setting("mwsr-c2c", 1, 2, True), schedules=2)
        impossible = check_setting(setting("three-clients-c2c", 2, 1, True), schedules=10)
        assert possible.snow_possible
        assert not impossible.snow_possible

    def test_verdict_describe(self):
        verdict = check_setting(setting("two-clients-no-c2c", 1, 1, False), schedules=10)
        text = verdict.describe()
        assert "impossible" in text


class TestFormatting:
    def test_feasibility_matrix_rendering(self):
        verdicts = [check_setting(s, schedules=2 if s.c2c and s.num_readers == 1 else 8) for s in standard_settings()]
        table = format_feasibility_matrix(verdicts)
        assert "2 clients" in table
        assert "MWSR" in table
        assert ">= 3 clients" in table

    def test_bounded_snw_matrix_shape(self):
        rows = bounded_snw_matrix(num_writers=2, num_objects=2, workload_rounds=2, seeds=(0,))
        names = [row.protocol for row in rows]
        assert names == ["algorithm-a", "algorithm-b", "algorithm-c", "occ-double-collect"]
        by_name = {row.protocol: row for row in rows}
        assert by_name["algorithm-a"].rounds_observed == 1
        assert by_name["algorithm-a"].versions_observed == 1
        assert by_name["algorithm-b"].rounds_observed == 2
        assert by_name["algorithm-b"].versions_observed == 1
        assert by_name["algorithm-c"].versions_observed >= 2
        assert all(row.satisfies_snw for row in rows)

    def test_bounded_snw_matrix_rendering(self):
        rows = bounded_snw_matrix(num_writers=2, num_objects=2, workload_rounds=1, seeds=(0,))
        table = format_bounded_snw_matrix(rows)
        assert "algorithm-c" in table
        assert "rounds" in table
