"""Unit tests of the N/O checkers on hand-constructed traces.

The end-to-end tests validate the checkers against real protocol executions;
these tests pin down the checkers' semantics on small synthetic traces where
the expected verdict is obvious by construction — in particular the exact
definition of "blocking" (an input action between the request receipt and the
reply) and the counting of round trips and reply versions.
"""

from __future__ import annotations

from repro.core.snow import blocking_servers_for, round_trips_per_server, versions_in_replies
from repro.ioa.actions import Message, recv_action, send_action
from repro.ioa.trace import Trace


READER = "r1"
SERVERS = ("sx", "sy")


def request(server, txn="R1"):
    return Message.make("read-req", READER, server, {"txn": txn})


def reply(server, txn="R1", num_versions=1, value=0):
    return Message.make("read-reply", server, READER, {"txn": txn, "num_versions": num_versions, "value": value})


def immediate_service_trace():
    """Both servers answer immediately after receiving the request."""
    trace = Trace()
    for server in SERVERS:
        req = request(server)
        rep = reply(server)
        trace.append(send_action(req))
        trace.append(recv_action(req))
        trace.append(send_action(rep))
        trace.append(recv_action(rep))
    return trace


def blocking_service_trace():
    """sy receives another message between the request and its reply."""
    trace = Trace()
    req_x, rep_x = request("sx"), reply("sx")
    trace.append(send_action(req_x))
    trace.append(recv_action(req_x))
    trace.append(send_action(rep_x))
    trace.append(recv_action(rep_x))

    req_y, rep_y = request("sy"), reply("sy")
    interloper = Message.make("write-install", "w1", "sy", {"txn": "W1"})
    trace.append(send_action(req_y))
    trace.append(recv_action(req_y))
    trace.append(send_action(interloper))
    trace.append(recv_action(interloper))  # input action at sy before it answers
    trace.append(send_action(rep_y))
    trace.append(recv_action(rep_y))
    return trace


def unanswered_request_trace():
    trace = Trace()
    req = request("sx")
    trace.append(send_action(req))
    trace.append(recv_action(req))
    return trace


class TestNonBlockingChecker:
    def test_immediate_service_is_non_blocking(self):
        assert blocking_servers_for(immediate_service_trace(), "R1", READER, SERVERS) == ()

    def test_intervening_input_action_is_blocking(self):
        offenders = blocking_servers_for(blocking_service_trace(), "R1", READER, SERVERS)
        assert offenders == ("sy",)

    def test_unanswered_request_counts_as_blocking(self):
        offenders = blocking_servers_for(unanswered_request_trace(), "R1", READER, SERVERS)
        assert offenders == ("sx",)

    def test_other_transactions_do_not_interfere(self):
        trace = Trace()
        # A request for a *different* transaction sits between R1's request and reply:
        # it is still an input action at the server, so R1's service did block on it
        # arriving first?  No — the definition only forbids inputs *between* recv and
        # send of the same transaction; a request that arrived earlier is fine.
        other_req = request("sx", txn="R2")
        trace.append(send_action(other_req))
        trace.append(recv_action(other_req))
        req, rep = request("sx", txn="R1"), reply("sx", txn="R1")
        trace.append(send_action(req))
        trace.append(recv_action(req))
        trace.append(send_action(rep))
        trace.append(recv_action(rep))
        other_rep = reply("sx", txn="R2")
        trace.append(send_action(other_rep))
        trace.append(recv_action(other_rep))
        assert blocking_servers_for(trace, "R1", READER, SERVERS) == ()
        # R2, on the other hand, had R1's request arrive between its own recv and send.
        assert blocking_servers_for(trace, "R2", READER, SERVERS) == ("sx",)


class TestRoundTripAndVersionCounting:
    def test_single_round_trip_per_server(self):
        trips = round_trips_per_server(immediate_service_trace(), "R1", READER, SERVERS)
        assert trips == {"sx": 1, "sy": 1}

    def test_multiple_requests_counted(self):
        trace = immediate_service_trace()
        extra = request("sx")
        trace.append(send_action(extra))
        trips = round_trips_per_server(trace, "R1", READER, SERVERS)
        assert trips["sx"] == 2

    def test_requests_of_other_transactions_not_counted(self):
        trace = immediate_service_trace()
        trace.append(send_action(request("sx", txn="R9")))
        assert round_trips_per_server(trace, "R1", READER, SERVERS)["sx"] == 1

    def test_versions_in_replies_takes_the_maximum(self):
        trace = Trace()
        for server, versions in zip(SERVERS, (1, 4)):
            req = request(server)
            rep = reply(server, num_versions=versions)
            trace.append(send_action(req))
            trace.append(recv_action(req))
            trace.append(send_action(rep))
            trace.append(recv_action(rep))
        max_versions, replies = versions_in_replies(trace, "R1", READER, SERVERS)
        assert max_versions == 4
        assert replies == 2

    def test_versions_default_to_one_when_no_replies(self):
        max_versions, replies = versions_in_replies(unanswered_request_trace(), "R1", READER, SERVERS)
        assert max_versions == 1
        assert replies == 0

    def test_missing_num_versions_field_defaults_to_one(self):
        trace = Trace()
        req = request("sx")
        bare_reply = Message.make("read-reply", "sx", READER, {"txn": "R1"})
        trace.append(send_action(req))
        trace.append(recv_action(req))
        trace.append(send_action(bare_reply))
        trace.append(recv_action(bare_reply))
        max_versions, replies = versions_in_replies(trace, "R1", READER, SERVERS)
        assert max_versions == 1 and replies == 1
