"""Unit tests for the Lemma 20 (P1-P4) tag-order checker."""

from __future__ import annotations

import pytest

from repro.core.serializability import check_lemma20, tag_precedes
from repro.txn.history import History, HistoryEntry
from repro.txn.transactions import ReadResult, WRITE_OK, read, write


def entry(txn, client, invoke, respond, result=None):
    return HistoryEntry(txn=txn, client=client, invoke_index=invoke, respond_index=respond, result=result)


def rr(**values):
    return ReadResult.from_mapping(values)


def good_history():
    return History(
        [
            entry(write(ox=1, oy=1, txn_id="W1"), "w1", 0, 1, WRITE_OK),
            entry(read("ox", "oy", txn_id="R1"), "r1", 2, 3, rr(ox=1, oy=1)),
            entry(write(ox=2, oy=2, txn_id="W2"), "w1", 4, 5, WRITE_OK),
            entry(read("ox", "oy", txn_id="R2"), "r1", 6, 7, rr(ox=2, oy=2)),
        ],
        objects=("ox", "oy"),
        initial_value=0,
    )


GOOD_TAGS = {"W1": 2, "R1": 2, "W2": 3, "R2": 3}


class TestTagPrecedes:
    def test_smaller_tag_precedes(self):
        assert tag_precedes(1, False, 2, False)
        assert not tag_precedes(2, False, 1, False)

    def test_equal_tags_write_before_read(self):
        assert tag_precedes(2, True, 2, False)
        assert not tag_precedes(2, False, 2, True)
        assert not tag_precedes(2, True, 2, True)
        assert not tag_precedes(2, False, 2, False)


class TestLemma20Accept:
    def test_valid_tagging_accepted(self):
        result = check_lemma20(good_history(), GOOD_TAGS)
        assert result.ok
        assert result.violations == ()

    def test_order_produced(self):
        result = check_lemma20(good_history(), GOOD_TAGS)
        assert result.order.index("W1") < result.order.index("R1")
        assert result.order.index("R1") < result.order.index("W2")

    def test_cross_check_agrees(self):
        result = check_lemma20(good_history(), GOOD_TAGS, cross_check=True)
        assert result.cross_check is not None and result.cross_check.ok

    def test_reads_of_initial_values_use_tag_one(self):
        history = History(
            [entry(read("ox", "oy", txn_id="R1"), "r1", 0, 1, rr(ox=0, oy=0))],
            objects=("ox", "oy"),
            initial_value=0,
        )
        assert check_lemma20(history, {"R1": 1}).ok


class TestLemma20Reject:
    def test_missing_tags_reported(self):
        result = check_lemma20(good_history(), {"W1": 2})
        assert not result.ok
        assert any("missing tags" in v for v in result.violations)

    def test_p1_requires_numeric_tags(self):
        tags = dict(GOOD_TAGS)
        tags["W1"] = "two"
        result = check_lemma20(good_history(), tags)
        assert not result.ok
        assert any(v.startswith("P1") for v in result.violations)

    def test_p2_violated_by_backwards_tags(self):
        tags = dict(GOOD_TAGS)
        tags["W2"] = 1  # W2 completes after R1 but is tagged before W1
        result = check_lemma20(good_history(), tags)
        assert not result.ok
        assert any(v.startswith("P2") for v in result.violations)

    def test_p3_violated_by_equal_write_tags(self):
        history = History(
            [
                entry(write(ox=1, txn_id="Wa"), "w1", 0, 10, WRITE_OK),
                entry(write(ox=2, txn_id="Wb"), "w2", 1, 11, WRITE_OK),
            ],
            objects=("ox",),
            initial_value=0,
        )
        result = check_lemma20(history, {"Wa": 2, "Wb": 2})
        assert not result.ok
        assert any(v.startswith("P3") for v in result.violations)

    def test_p4_violated_by_stale_read(self):
        tags = dict(GOOD_TAGS)
        history = History(
            [
                entry(write(ox=1, oy=1, txn_id="W1"), "w1", 0, 1, WRITE_OK),
                entry(read("ox", "oy", txn_id="R1"), "r1", 2, 3, rr(ox=0, oy=0)),
                entry(write(ox=2, oy=2, txn_id="W2"), "w1", 4, 5, WRITE_OK),
                entry(read("ox", "oy", txn_id="R2"), "r1", 6, 7, rr(ox=2, oy=2)),
            ],
            objects=("ox", "oy"),
            initial_value=0,
        )
        result = check_lemma20(history, tags)
        assert not result.ok
        assert any(v.startswith("P4") for v in result.violations)

    def test_p4_violated_by_initial_value_after_write(self):
        history = History(
            [
                entry(write(ox=5, txn_id="W1"), "w1", 0, 1, WRITE_OK),
                entry(read("ox", txn_id="R1"), "r1", 2, 3, rr(ox=0)),
            ],
            objects=("ox",),
            initial_value=0,
        )
        result = check_lemma20(history, {"W1": 2, "R1": 2})
        assert not result.ok

    def test_describe_mentions_result(self):
        good = check_lemma20(good_history(), GOOD_TAGS)
        assert "P1-P4 hold" in good.describe()
        bad = check_lemma20(good_history(), {"W1": 2})
        assert "violated" in bad.describe()


class TestLemma20OnProtocols:
    """The protocol-reported tags satisfy P1-P4 on real executions (Theorems 3-5)."""

    @pytest.mark.parametrize("protocol", ["algorithm-a", "algorithm-b", "algorithm-c"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_protocol_tags_satisfy_lemma20(self, protocol, seed):
        from repro.ioa import FIFOScheduler, RandomScheduler
        from tests.conftest import build_system, run_simple_workload

        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        handle = build_system(protocol, num_readers=2, num_writers=2, scheduler=scheduler, seed=seed)
        run_simple_workload(handle, rounds=2)
        result = handle.lemma20()
        assert result.ok, result.describe()
