"""Unit tests for the declarative fault plans."""

from __future__ import annotations

import random

import pytest

from repro.faults import (
    BimodalLatency,
    CrashEvent,
    DropPolicy,
    DuplicatePolicy,
    FaultPlan,
    FixedLatency,
    Partition,
    RetryPolicy,
    UniformLatency,
    standard_fault_scenarios,
)


class TestLatencyModels:
    def test_fixed_latency_is_constant(self):
        rng = random.Random(0)
        assert [FixedLatency(3).sample(rng) for _ in range(5)] == [3, 3, 3, 3, 3]

    def test_uniform_latency_stays_in_range(self):
        rng = random.Random(1)
        model = UniformLatency(2, 6)
        samples = [model.sample(rng) for _ in range(200)]
        assert min(samples) >= 2 and max(samples) <= 6

    def test_uniform_latency_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(5, 2)

    def test_bimodal_latency_hits_both_modes(self):
        rng = random.Random(2)
        model = BimodalLatency(fast=1, slow=20, slow_probability=0.5)
        samples = {model.sample(rng) for _ in range(100)}
        assert samples == {1, 20}

    def test_bimodal_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BimodalLatency(slow_probability=1.5)

    def test_latency_sampling_is_deterministic_in_seed(self):
        model = UniformLatency(0, 10)
        a = [model.sample(random.Random(7)) for _ in range(1)]
        b = [model.sample(random.Random(7)) for _ in range(1)]
        assert a == b


class TestPolicies:
    def test_drop_policy_validates_probability(self):
        with pytest.raises(ValueError):
            DropPolicy(probability=-0.1)
        with pytest.raises(ValueError):
            DropPolicy(probability=0.5, max_consecutive=0)

    def test_duplicate_policy_validates_probability(self):
        with pytest.raises(ValueError):
            DuplicatePolicy(probability=2.0)

    def test_retry_policy_validates(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_steps=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestPartition:
    def test_window_semantics(self):
        p = Partition(left=("r1",), right=("sx",), start=5, heal=10)
        assert not p.active(4)
        assert p.active(5) and p.active(9)
        assert not p.active(10)

    def test_blocks_both_directions_only_across_the_cut(self):
        p = Partition(left=("r1",), right=("sx",), start=0, heal=10)
        assert p.blocks("r1", "sx", 3) and p.blocks("sx", "r1", 3)
        assert not p.blocks("r1", "sy", 3)
        assert not p.blocks("r1", "sx", 11)

    def test_permanent_partition(self):
        p = Partition(left=("r1",), right=("sx",), start=2, heal=None)
        assert p.active(10_000)

    def test_sides_must_be_disjoint(self):
        with pytest.raises(ValueError):
            Partition(left=("a", "b"), right=("b",))

    def test_heal_must_follow_start(self):
        with pytest.raises(ValueError):
            Partition(left=("a",), right=("b",), start=5, heal=5)


class TestCrashEvent:
    def test_crash_window(self):
        c = CrashEvent(server="sx", at=3, recover=8)
        assert not c.crashed(2)
        assert c.crashed(3) and c.crashed(7)
        assert not c.crashed(8)

    def test_fail_stop_never_recovers(self):
        assert CrashEvent(server="sx", at=0, recover=None).crashed(10**9)

    def test_recover_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashEvent(server="sx", at=5, recover=5)


class TestFaultPlan:
    def test_none_is_inert(self):
        plan = FaultPlan.none()
        assert plan.is_inert()
        assert not plan.needs_retry()
        assert "reliable" in plan.describe()

    def test_any_fault_breaks_inertness(self):
        assert not FaultPlan(drops=DropPolicy(0.1)).is_inert()
        assert not FaultPlan(latency=FixedLatency(1)).is_inert()
        assert not FaultPlan(crashes=(CrashEvent(server="sx"),)).is_inert()
        assert not FaultPlan(partitions=(Partition(left=("a",), right=("b",)),)).is_inert()

    def test_needs_retry_tracks_lossy_features(self):
        assert FaultPlan(drops=DropPolicy(0.1)).needs_retry()
        assert FaultPlan(crashes=(CrashEvent(server="sx"),)).needs_retry()
        assert not FaultPlan(latency=FixedLatency(2)).needs_retry()

    def test_with_seed(self):
        plan = FaultPlan(drops=DropPolicy(0.2), seed=0)
        assert plan.with_seed(9).seed == 9
        assert plan.seed == 0  # frozen original untouched

    def test_describe_mentions_every_component(self):
        plan = FaultPlan(
            name="kitchen-sink",
            latency=UniformLatency(0, 3),
            drops=DropPolicy(0.1),
            duplicates=DuplicatePolicy(0.1),
            partitions=(Partition(left=("r1",), right=("sx",), start=1, heal=2),),
            crashes=(CrashEvent(server="sx", at=1, recover=2),),
            retry=RetryPolicy(),
        )
        text = plan.describe()
        for needle in ("kitchen-sink", "uniform", "drop", "duplicate", "partition", "crash", "retry"):
            assert needle in text


class TestScenarios:
    def test_standard_grid_has_baseline_and_faults(self):
        scenarios = standard_fault_scenarios(seed=4, crash_server="sx")
        assert "none" in scenarios and scenarios["none"].is_inert()
        assert len(scenarios) >= 5
        # every non-baseline scenario actually perturbs something
        assert all(not plan.is_inert() for name, plan in scenarios.items() if name != "none")

    def test_crash_scenario_targets_requested_server(self):
        scenarios = standard_fault_scenarios(seed=0, crash_server="s9")
        assert scenarios["crash-recover"].crashes[0].server == "s9"

    def test_lossy_scenarios_carry_a_retry_policy(self):
        scenarios = standard_fault_scenarios(seed=0)
        assert scenarios["lossy"].retry is not None
        assert scenarios["crash-recover"].retry is not None
