"""Unit tests for the fault injector's pipeline mechanics."""

from __future__ import annotations

import pytest

from repro.faults import (
    ChaosScheduler,
    CrashEvent,
    DropPolicy,
    DuplicatePolicy,
    FaultInjector,
    FaultPlan,
    Partition,
    RetryPolicy,
    FixedLatency,
)
from repro.ioa import ActionKind, FIFOScheduler

from tests.faults.conftest import run_fixed_workload


class TestSingleUse:
    def test_injector_cannot_be_attached_twice(self):
        from repro.protocols import get_protocol

        injector = FaultInjector(FaultPlan.none(), seed=0)
        get_protocol("simple-rw").build(fault_plane=injector)
        with pytest.raises(RuntimeError, match="single-use"):
            get_protocol("simple-rw").build(fault_plane=injector)


class TestPlanNameValidation:
    def test_crashing_an_unknown_server_fails_loudly(self):
        from repro.ioa import UnknownProcessError

        plan = FaultPlan(crashes=(CrashEvent(server="s99", at=0, recover=None),))
        with pytest.raises(UnknownProcessError, match="s99"):
            run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=1))

    def test_partitioning_an_unknown_process_fails_loudly(self):
        from repro.ioa import UnknownProcessError

        plan = FaultPlan(partitions=(Partition(left=("nobody",), right=("sx",), start=0, heal=5),))
        with pytest.raises(UnknownProcessError, match="nobody"):
            run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=1))


class TestDropsAndRetry:
    def test_drops_without_retry_strand_transactions(self):
        plan = FaultPlan(name="black-hole", drops=DropPolicy(probability=1.0, max_consecutive=10**6))
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=1))
        assert len(handle.simulation.incomplete_transactions()) == 4
        stats = handle.simulation.fault_plane.stats
        assert stats.dropped > 0 and stats.delivered_copies == 0
        assert stats.abandoned == stats.dropped  # no retry: every drop is final

    def test_retry_heals_total_loss_via_fair_loss_bound(self):
        plan = FaultPlan(
            name="awful-but-fair",
            drops=DropPolicy(probability=1.0, max_consecutive=3),
            retry=RetryPolicy(timeout_steps=5, max_attempts=10),
        )
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=1))
        assert not handle.simulation.incomplete_transactions()
        stats = handle.simulation.fault_plane.stats
        assert stats.retransmissions > 0
        assert stats.dropped > 0

    def test_retry_attempts_are_capped(self):
        plan = FaultPlan(
            name="hopeless",
            drops=DropPolicy(probability=1.0, max_consecutive=10**6),
            retry=RetryPolicy(timeout_steps=2, max_attempts=3),
        )
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=1))
        stats = handle.simulation.fault_plane.stats
        assert stats.abandoned > 0
        assert handle.simulation.incomplete_transactions()

    def test_retransmissions_are_annotated_on_transactions(self):
        plan = FaultPlan(
            name="lossy",
            drops=DropPolicy(probability=0.9, max_consecutive=2),
            retry=RetryPolicy(timeout_steps=4, max_attempts=10),
        )
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=2))
        annotated = [
            r for r in handle.simulation.transaction_records() if "retransmissions" in r.annotations
        ]
        assert annotated, "expected at least one transaction to record retransmissions"


class TestDuplicates:
    def test_duplicates_are_suppressed_and_counted(self):
        plan = FaultPlan(name="dup", duplicates=DuplicatePolicy(probability=1.0))
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=3))
        assert not handle.simulation.incomplete_transactions()
        stats = handle.simulation.fault_plane.stats
        assert stats.duplicated == stats.sent  # every message duplicated
        assert stats.duplicates_suppressed == stats.duplicated

    def test_duplicates_leave_no_extra_trace_actions(self):
        """Suppressed copies must be invisible to the trace-level checkers."""
        plan = FaultPlan(name="dup", duplicates=DuplicatePolicy(probability=1.0))
        dup = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(base=FIFOScheduler()))
        bare = run_fixed_workload("simple-rw", plan=None, scheduler=FIFOScheduler())
        dup_recvs = len(dup.trace().of_kind(ActionKind.RECV))
        bare_recvs = len(bare.trace().of_kind(ActionKind.RECV))
        assert dup_recvs == bare_recvs


class TestCrashes:
    def test_crash_recover_holds_and_redelivers(self):
        plan = FaultPlan(name="cr", crashes=(CrashEvent(server="sx", at=2, recover=40),))
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=4))
        assert not handle.simulation.incomplete_transactions()
        stats = handle.simulation.fault_plane.stats
        assert stats.crashes == 1 and stats.recoveries == 1
        assert stats.held_by_crash > 0

    def test_fail_stop_costs_availability(self):
        plan = FaultPlan(name="fs", crashes=(CrashEvent(server="sx", at=2, recover=None),))
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=4))
        incomplete = handle.simulation.incomplete_transactions()
        assert incomplete  # everything that needs sx is stuck
        # sy-only traffic is unaffected; the held mail is still parked.
        assert handle.simulation.fault_plane.held_messages()

    def test_crash_transitions_recorded_as_internal_actions(self):
        plan = FaultPlan(name="cr", crashes=(CrashEvent(server="sx", at=2, recover=40),))
        handle = run_fixed_workload("simple-rw", plan=plan, scheduler=ChaosScheduler(seed=4))
        internals = [
            a
            for a in handle.trace().of_kind(ActionKind.INTERNAL)
            if a.actor == "sx" and a.get("fault") in ("crash", "recover")
        ]
        assert [a.get("fault") for a in internals] == ["crash", "recover"]

    def test_crashed_servers_introspection(self):
        injector = FaultInjector(
            FaultPlan(crashes=(CrashEvent(server="sx", at=0, recover=None),)), seed=0
        )
        from repro.protocols import get_protocol

        handle = get_protocol("simple-rw").build(
            scheduler=ChaosScheduler(base=FIFOScheduler()), fault_plane=injector
        )
        handle.submit_write({"ox": 1}, txn_id="W1")
        handle.run()
        assert injector.crashed_servers() == ("sx",)


class TestPartitions:
    def test_healed_partition_delays_then_completes(self):
        plan = FaultPlan(
            name="ph",
            partitions=(Partition(left=("r1",), right=("sx",), start=0, heal=50),),
        )
        handle = run_fixed_workload(
            "simple-rw", plan=plan, scheduler=ChaosScheduler(seed=5), num_writers=1
        )
        assert not handle.simulation.incomplete_transactions()
        assert handle.simulation.fault_plane.stats.held_by_partition > 0

    def test_permanent_partition_strands_cross_cut_traffic(self):
        plan = FaultPlan(
            name="pp",
            partitions=(Partition(left=("r1",), right=("sx", "sy"), start=0, heal=None),),
        )
        handle = run_fixed_workload(
            "simple-rw", plan=plan, scheduler=ChaosScheduler(seed=5), num_writers=1
        )
        incomplete = {str(r.txn_id) for r in handle.simulation.incomplete_transactions()}
        # both reads are cut off from every server; writes are unaffected
        assert incomplete == {"R1", "R2"}


class TestVirtualTimeOrdering:
    def test_slow_message_cannot_outrun_an_earlier_crash(self):
        """Regression: a delivery stamped to arrive *after* a fail-stop must
        not be delivered — virtual time has to pass the crash onset (and
        sweep the in-flight message) before the arrival becomes ripe."""
        plan = FaultPlan(
            name="slow-into-crash",
            latency=FixedLatency(25),
            crashes=(CrashEvent(server="sx", at=10, recover=None),),
        )
        handle = run_fixed_workload(
            "simple-rw", plan=plan, scheduler=ChaosScheduler(seed=1), num_writers=1
        )
        sim = handle.simulation
        assert sim.incomplete_transactions(), "traffic through dead sx must strand"
        # sx neither received nor reacted after its crash: no recv at sx at all
        # (every message to it was stamped >= 25, past the crash at 10).
        recvs_at_sx = [a for a in handle.trace().of_kind(ActionKind.RECV) if a.actor == "sx"]
        assert recvs_at_sx == []
        assert sim.fault_plane.stats.held_by_crash > 0

    def test_crash_window_inside_a_latency_jump_is_honoured(self):
        """A crash+recover window jumped over in one latency gap still holds
        and then redelivers the in-flight messages (completion, with the
        crash/recover transitions on the trace)."""
        plan = FaultPlan(
            name="blip-inside-jump",
            latency=FixedLatency(30),
            crashes=(CrashEvent(server="sx", at=5, recover=20),),
        )
        handle = run_fixed_workload(
            "simple-rw", plan=plan, scheduler=ChaosScheduler(seed=1), num_writers=1
        )
        assert not handle.simulation.incomplete_transactions()
        faults = [a.get("fault") for a in handle.trace().of_kind(ActionKind.INTERNAL) if a.actor == "sx"]
        assert faults == ["crash", "recover"]


class TestLatency:
    def test_fixed_latency_shifts_ready_at_stamps(self):
        from repro.protocols import get_protocol

        injector = FaultInjector(FaultPlan(latency=FixedLatency(7)), seed=0)
        handle = get_protocol("simple-rw").build(
            scheduler=ChaosScheduler(base=FIFOScheduler()), fault_plane=injector
        )
        handle.submit_write({"ox": 1, "oy": 1}, txn_id="W1")
        sim = handle.simulation
        sim.start()
        sim.step()  # invoke W1 -> client sends write-val messages
        stamps = [d.ready_at for d in sim.pending_deliveries()]
        assert stamps and all(s >= 7 for s in stamps)
        handle.run()
        assert not sim.incomplete_transactions()
