"""Unit tests for the chaos scheduler's virtual-time behaviour."""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, FaultInjector, FaultPlan, FixedLatency
from repro.ioa import (
    FIFOScheduler,
    LIFOScheduler,
    Message,
    PendingDelivery,
    SchedulerError,
)


class _KernelStub:
    """Just enough kernel surface for Scheduler.choose()."""

    def __init__(self, steps_taken=0, fault_plane=None):
        self.steps_taken = steps_taken
        self.fault_plane = fault_plane


def _delivery(enqueued_at, ready_at=0):
    message = Message.make("m", "a", "b", {})
    return PendingDelivery(message=message, enqueued_at=enqueued_at, ready_at=ready_at)


class TestChaosChoice:
    def test_raises_on_empty_pending(self):
        with pytest.raises(SchedulerError):
            ChaosScheduler().choose([], _KernelStub())

    def test_degrades_to_base_when_everything_is_ripe(self):
        pending = [_delivery(1), _delivery(2), _delivery(3)]
        chaos = ChaosScheduler(base=LIFOScheduler())
        assert chaos.choose(pending, _KernelStub()) == 2  # LIFO picks newest

    def test_unripe_events_are_excluded(self):
        pending = [_delivery(1, ready_at=50), _delivery(2, ready_at=0)]
        chaos = ChaosScheduler(base=FIFOScheduler())
        assert chaos.choose(pending, _KernelStub(steps_taken=10)) == 1

    def test_picks_earliest_arrival_when_nothing_is_ripe(self):
        plane = FaultInjector(FaultPlan(latency=FixedLatency(1)), seed=0)
        pending = [_delivery(1, ready_at=90), _delivery(2, ready_at=40)]
        chaos = ChaosScheduler(base=FIFOScheduler())
        kernel = _KernelStub(steps_taken=10, fault_plane=plane)
        assert chaos.choose(pending, kernel) == 1
        # choose() must NOT advance the clock itself: time only moves through
        # the injector's boundary walk, or faults scheduled before an arrival
        # could be skipped.
        assert plane.now(kernel) == 10

    def test_ties_on_ready_at_break_by_enqueue_order(self):
        pending = [_delivery(5, ready_at=40), _delivery(2, ready_at=40)]
        chaos = ChaosScheduler(base=FIFOScheduler())
        assert chaos.choose(pending, _KernelStub(steps_taken=0)) == 1

    def test_reset_resets_the_base_scheduler(self):
        from repro.ioa import RandomScheduler

        chaos = ChaosScheduler(seed=9)
        pending = [_delivery(i) for i in range(1, 6)]
        first = [chaos.choose(pending, _KernelStub()) for _ in range(5)]
        chaos.reset()
        second = [chaos.choose(pending, _KernelStub()) for _ in range(5)]
        assert first == second

    def test_virtual_clock_unblocks_future_work_without_a_plane(self):
        # Without a fault plane the clock is just steps_taken; a future
        # ready_at still executes via the jump rule rather than deadlocking.
        pending = [_delivery(1, ready_at=10**6)]
        chaos = ChaosScheduler(base=FIFOScheduler())
        assert chaos.choose(pending, _KernelStub(steps_taken=0)) == 0
