"""The fault-aware adversary: S-violation hunts under drops (ROADMAP item).

``ChaosScheduler(base=AdversarialScheduler)`` has existed since PR 1; these
tests are the experiments that actually *drive* it: adversarial event
ordering composed with a lossy fault plan, hunting fractured reads.
"""

from __future__ import annotations

from repro.analysis import make_scheduler, scheduler_names
from repro.faults import (
    ChaosScheduler,
    chaos_adversarial_scheduler,
    fracture_rules,
    hunt_s_violations,
    lossy_network,
)
from repro.ioa import AdversarialScheduler


def test_registry_has_the_composition():
    assert "chaos+adversarial" in scheduler_names()
    scheduler = make_scheduler("chaos+adversarial", seed=5)
    assert isinstance(scheduler, ChaosScheduler)
    assert isinstance(scheduler.base, AdversarialScheduler)


def test_chaos_adversarial_scheduler_takes_rules():
    rules = fracture_rules("R", "W", "sx", "sy")
    scheduler = chaos_adversarial_scheduler(seed=1, rules=rules)
    assert [r.name for r in scheduler.base.rules] == [r.name for r in rules]


def test_hunt_finds_fractured_reads_in_the_naive_candidate():
    """Under drops + adversarial ordering the naive latest-value protocol
    loses S on at least one seed — the composition has real teeth."""
    hunt = hunt_s_violations(
        protocol_names=("naive-snow",), plan=lossy_network(), seeds=(0, 1, 2, 3)
    )
    violations = hunt.violations()
    assert violations, hunt.describe()
    # The loss shows up as exactly the S bit: everything else still holds.
    assert all(v.property_string == "sNOW" for v in violations)
    # And the fault plan was genuinely active while the anomaly was produced.
    assert any(v.retransmissions > 0 for v in violations)


def test_the_s_protocols_survive_the_same_hunt():
    """Algorithms A and B keep S under the identical drops + adversary regime."""
    hunt = hunt_s_violations(
        protocol_names=("algorithm-a", "algorithm-b"),
        plan=lossy_network(),
        seeds=(0, 1, 2, 3),
    )
    assert hunt.violations() == (), hunt.describe()


def test_hunt_is_deterministic():
    a = hunt_s_violations(protocol_names=("naive-snow",), seeds=(1,))
    b = hunt_s_violations(protocol_names=("naive-snow",), seeds=(1,))
    assert [r.consistent for r in a.results] == [r.consistent for r in b.results]
