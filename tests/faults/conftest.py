"""Shared helpers for the fault-plane tests.

Trace comparisons across runs must use ``Trace.signature()`` (message and
transaction ids come from process-global counters), and the workload must use
*explicit* transaction ids so two runs in the same process submit identical
transactions.
"""

from __future__ import annotations

from repro.faults import FaultInjector
from repro.ioa import FIFOScheduler
from repro.protocols import get_protocol


def run_fixed_workload(
    protocol_name: str,
    plan=None,
    scheduler=None,
    seed: int = 3,
    num_readers: int = 1,
    num_writers: int = 2,
    num_objects: int = 2,
    run_to_completion: bool = False,
):
    """Build, submit a fixed explicit-id workload, run until idle.

    Returns the system handle; ``handle.trace().signature()`` is comparable
    across calls.
    """
    protocol = get_protocol(protocol_name)
    if not protocol.supports_multiple_readers:
        num_readers = 1
    handle = protocol.build(
        num_readers=num_readers,
        num_writers=num_writers,
        num_objects=num_objects,
        scheduler=scheduler or FIFOScheduler(),
        seed=seed,
        fault_plane=FaultInjector(plan, seed=seed) if plan is not None else None,
    )
    w1 = handle.submit_write({obj: f"v1-{obj}" for obj in handle.objects}, writer=handle.writers[0], txn_id="W1")
    r1 = handle.submit_read(handle.objects, reader=handle.readers[0], txn_id="R1")
    w2 = handle.submit_write(
        {obj: f"v2-{obj}" for obj in handle.objects}, writer=handle.writers[-1], txn_id="W2", after=[w1]
    )
    r2 = handle.submit_read(handle.objects, reader=handle.readers[-1], txn_id="R2", after=[w2])
    if run_to_completion:
        handle.run_to_completion()
    else:
        handle.run()
    return handle
