"""Golden-trace guarantees of the fault plane.

Two properties everything else rests on:

* **Inertness** — ``FaultPlan.none()`` (and the base ``FaultPlane`` class)
  produce traces identical to running with no fault plane at all, for both
  the FIFO and random schedulers, on ``simple_rw`` and ``algorithm_a``.
* **Determinism** — the same plan + seed + scheduler reproduces the same
  trace, fault decisions included.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, FaultPlan, flaky_everything, lossy_network
from repro.ioa import FaultPlane, FIFOScheduler, RandomScheduler

from tests.faults.conftest import run_fixed_workload

GOLDEN_PROTOCOLS = ("simple-rw", "algorithm-a")


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_plan_none_matches_bare_kernel_under_fifo(protocol):
    bare = run_fixed_workload(protocol, plan=None, scheduler=FIFOScheduler())
    planned = run_fixed_workload(
        protocol, plan=FaultPlan.none(), scheduler=ChaosScheduler(base=FIFOScheduler())
    )
    assert bare.trace().signature() == planned.trace().signature()
    assert not planned.simulation.incomplete_transactions()


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_plan_none_matches_bare_kernel_under_random_schedules(protocol):
    bare = run_fixed_workload(protocol, plan=None, scheduler=RandomScheduler(seed=17))
    planned = run_fixed_workload(
        protocol, plan=FaultPlan.none(), scheduler=ChaosScheduler(base=RandomScheduler(seed=17))
    )
    assert bare.trace().signature() == planned.trace().signature()


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_base_fault_plane_class_is_reliable(protocol):
    """The FaultPlane base class itself implements the reliable semantics."""
    from repro.protocols import get_protocol

    def run(plane):
        handle = get_protocol(protocol).build(
            num_readers=1, num_writers=2, num_objects=2, scheduler=FIFOScheduler(), seed=3,
            fault_plane=plane,
        )
        w = handle.submit_write({obj: 1 for obj in handle.objects}, txn_id="W1")
        handle.submit_read(handle.objects, txn_id="R1", after=[w])
        handle.run_to_completion()
        return handle.trace().signature()

    assert run(None) == run(FaultPlane())


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
@pytest.mark.parametrize("plan_factory", [lossy_network, flaky_everything])
def test_same_plan_and_seed_reproduce_the_same_trace(protocol, plan_factory):
    runs = [
        run_fixed_workload(protocol, plan=plan_factory(seed=5), scheduler=ChaosScheduler(seed=11))
        for _ in range(2)
    ]
    assert runs[0].trace().signature() == runs[1].trace().signature()
    assert runs[0].simulation.fault_plane.stats == runs[1].simulation.fault_plane.stats


def test_different_fault_seeds_usually_diverge():
    a = run_fixed_workload("simple-rw", plan=lossy_network(seed=1), scheduler=ChaosScheduler(seed=2))
    b = run_fixed_workload("simple-rw", plan=lossy_network(seed=99), scheduler=ChaosScheduler(seed=2))
    # Not a hard guarantee for every seed pair, but these two are pinned.
    assert a.trace().signature() != b.trace().signature()


def test_inert_plan_still_reports_stats():
    handle = run_fixed_workload(
        "simple-rw", plan=FaultPlan.none(), scheduler=ChaosScheduler(base=FIFOScheduler())
    )
    stats = handle.simulation.fault_plane.stats
    assert stats.sent == stats.delivered_copies > 0
    assert stats.dropped == stats.duplicated == stats.retransmissions == 0
