"""End-to-end: every standard scenario through real protocols.

These are the liveness/availability contracts of the scenario library:
heal-able regimes (latency, fair loss + retry, duplication, crash-recover,
healed partitions) complete every transaction on every protocol; permanent
faults cost availability instead of raising.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, fail_stop, standard_fault_scenarios
from tests.faults.conftest import run_fixed_workload

PROTOCOLS = ("simple-rw", "algorithm-a", "algorithm-b", "algorithm-c", "eiger")
SCENARIOS = standard_fault_scenarios(seed=6, crash_server="sx")


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_healable_scenarios_complete_everything(protocol, scenario):
    plan = SCENARIOS[scenario]
    handle = run_fixed_workload(protocol, plan=plan, scheduler=ChaosScheduler(seed=8))
    assert not handle.simulation.incomplete_transactions(), (
        f"{protocol} under {scenario}: {handle.simulation.describe()}"
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fail_stop_strands_shard_traffic(protocol):
    handle = run_fixed_workload(
        protocol, plan=fail_stop(server="sx", at=2, seed=6), scheduler=ChaosScheduler(seed=8)
    )
    assert handle.simulation.incomplete_transactions()


@pytest.mark.parametrize("protocol", ("simple-rw", "algorithm-b"))
def test_snow_checkers_run_on_faulted_executions(protocol):
    handle = run_fixed_workload(
        protocol, plan=SCENARIOS["lossy"], scheduler=ChaosScheduler(seed=8)
    )
    report = handle.snow_report()
    # The verdict string is protocol-specific; what matters is the checkers
    # accept an execution produced under faults at all.
    assert len(report.property_string()) == 4
