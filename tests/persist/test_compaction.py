"""Checkpointing and log compaction: bounded logs, unchanged verdicts.

Three layers of coverage:

* **the data structure** — :class:`ConsensusLog` with a snapshot base keeps
  global indices, answers the suffix, refuses compacted-prefix queries with
  :class:`CompactedLogError`, and only ever discards the *applied* prefix;
* **the member** — ``checkpoint()`` snapshots the state machine without
  changing it, never while a joint configuration is in flight, and a
  follower too far behind is caught up by a leader-shipped snapshot
  (``cns-snapshot``) plus the remaining log suffix — the reconfig
  state-transfer path;
* **the system** — sweeping ``compact_every`` across a run changes *no*
  SNOW verdict and no read result while bounding every member's retained
  log (the acceptance criterion of PR 9).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentConfig, run_experiment
from repro.analysis.workload import WorkloadSpec
from repro.consensus.log import CompactedLogError, ConsensusLog, LogEntry
from repro.consensus.reconfig import ReconfigPlan, set_consensus_group
from repro.ioa.errors import SimulationError
from repro.persist import PersistencePolicy

from tests import invariants
from tests.consensus.conftest import run_consensus_workload
from tests.reconfig.conftest import final_read_values, run_reconfig_workload

pytestmark = pytest.mark.invariants


def entry(term: int, rid: str) -> LogEntry:
    return LogEntry(term=term, request_id=rid, msg_type="update-coor")


def applied_log(n: int = 6, commit: int = 5, applied: int = 4) -> ConsensusLog:
    log = ConsensusLog()
    for i in range(1, n + 1):
        log.append(entry(1, f"r{i}"))
    log.advance_commit(commit)
    log.take_unapplied()
    log.last_applied = applied
    return log


def snapshot_at(index: int, term: int = 1) -> dict:
    return {"index": index, "term": term, "machine": index, "replies": {}, "config": None}


# ----------------------------------------------------------------------
# ConsensusLog: global indices over a compacted base
# ----------------------------------------------------------------------
class TestLogCompaction:
    def test_compact_keeps_global_indices(self):
        log = applied_log()
        dropped = log.compact(snapshot_at(3))
        assert dropped == 3 and log.compacted_entries == 3
        assert log.snapshot_index == 3 and log.snapshot_term == 1
        assert log.last_index == 6 and log.commit_index == 5
        assert log.entry(4).request_id == "r4"
        assert [e.request_id for e in log.entries] == ["r4", "r5", "r6"]
        assert "snapshot@3" in log.describe()

    def test_compacted_prefix_queries_refuse_loudly(self):
        log = applied_log()
        log.compact(snapshot_at(3))
        with pytest.raises(CompactedLogError, match="compacted away"):
            log.entry(2)
        with pytest.raises(SimulationError):
            log.entry(99)  # out of range stays out of range
        assert log.term_at(3) == 1  # boundary answered from the snapshot
        assert log.term_at(0) == 0
        assert log.matches(2, 1) and log.matches(3, 1)  # inside/at the base
        assert not log.matches(3, 9)  # wrong term at the base

    def test_only_the_applied_prefix_may_go(self):
        log = applied_log(applied=4)
        with pytest.raises(SimulationError, match="applied prefix"):
            log.compact(snapshot_at(5))
        assert log.compact(snapshot_at(3)) == 3
        assert log.compact(snapshot_at(2)) == 0  # stale snapshot: no-op

    def test_dedup_survives_compaction_via_request_ids(self):
        log = applied_log()
        log.compact(snapshot_at(3))
        # compacted ids leave the in-log index; exactly-once now rests on
        # the snapshot's memoized replies, which the coordinator checks first
        assert not log.contains_request("r2")
        assert log.contains_request("r5")

    def test_install_snapshot_retains_matching_suffix(self):
        log = applied_log(n=6, commit=5, applied=4)
        needs_restore = log.install_snapshot(snapshot_at(5))
        assert needs_restore  # 5 > last_applied=4: machine must be restored
        assert [e.request_id for e in log.entries] == ["r6"]
        assert log.last_index == 6 and log.commit_index == 5 and log.last_applied == 5

    def test_install_snapshot_wipes_conflicting_log(self):
        log = applied_log(n=4, commit=2, applied=2)
        needs_restore = log.install_snapshot(snapshot_at(6, term=2))
        assert needs_restore
        assert log.entries == () and log.last_index == 6
        assert log.snapshot_index == 6 and log.snapshot_term == 2
        assert log.commit_index == 6 and log.last_applied == 6

    def test_install_snapshot_behind_apply_keeps_machine(self):
        log = applied_log(n=6, commit=6, applied=6)
        assert not log.install_snapshot(snapshot_at(4))  # already applied past it
        assert log.last_applied == 6

    def test_restore_requires_contiguous_suffix(self):
        log = ConsensusLog()
        with pytest.raises(SimulationError, match="not contiguous"):
            log.restore(3, 1, ((4, entry(1, "r4")), (6, entry(1, "r6"))), 4)
        log.restore(3, 1, ((4, entry(1, "r4")), (5, entry(1, "r5"))), 9)
        assert log.last_index == 5
        assert log.commit_index == 5  # clamped to what is actually stored
        assert log.last_applied == 3  # replay restarts at the snapshot


# ----------------------------------------------------------------------
# The member: checkpoint() and snapshot-install
# ----------------------------------------------------------------------
class TestMemberCheckpoint:
    def test_manual_checkpoint_preserves_state_and_serving(self):
        handle = run_consensus_workload(
            "algorithm-b", consensus_factor=3, persistence=PersistencePolicy()
        )
        member = handle.simulation.automaton("coor")
        state_before = member.machine.snapshot()
        applied_before = member.log.last_applied
        assert member.checkpoint() > 0
        assert member.checkpoints == 1
        assert member.machine.snapshot() == state_before
        assert member.log.snapshot_index == applied_before
        with pytest.raises(CompactedLogError):
            member.log.entry(1)
        # the machine still answers reads over the compacted history
        _, payload = member.machine.apply("get-tag-arr", {"read_set": handle.objects})
        assert payload["tag"] >= 1

    def test_checkpoint_refuses_while_joint_config_in_flight(self):
        handle = run_consensus_workload(
            "algorithm-b", consensus_factor=3, persistence=PersistencePolicy()
        )
        member = handle.simulation.automaton("coor")
        member.joint = ("coor", "coor.2")  # mid-change: the joint entry must stay
        assert member.checkpoint() == 0
        member.joint = None
        assert member.checkpoint() > 0

    def test_snapshot_roundtrips_through_the_machines(self):
        handle = run_consensus_workload(
            "occ-double-collect", consensus_factor=3, persistence=PersistencePolicy()
        )
        member = handle.simulation.automaton("coor")
        state = member.machine.snapshot()
        member.machine.restore(state)
        assert member.machine.snapshot() == state


# ----------------------------------------------------------------------
# Reconfig state transfer: snapshot + suffix instead of full history
# ----------------------------------------------------------------------
class TestSnapshotStateTransfer:
    GROW = ("coor", "coor.2", "coor.3", "coor.4", "coor.5")

    def run_grow(self, persistence):
        return run_reconfig_workload(
            "algorithm-b",
            reconfig=ReconfigPlan(name="grow", requests=(set_consensus_group(self.GROW, at=20),)),
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            rounds=4,
            persistence=persistence,
        )

    def test_new_members_catch_up_from_snapshot_plus_suffix(self):
        handle = self.run_grow(PersistencePolicy(compact_every=2))
        sent = [
            a.message
            for a in handle.trace()
            if a.message is not None and a.message.msg_type == "cns-snapshot"
        ]
        assert sent, "a compacting leader never shipped a snapshot to the joiners"
        members = invariants.consensus_members(handle)
        assert len(members) == len(self.GROW)
        assert len({m.log.commit_index for m in members}) == 1
        assert len({len(m.machine.list) for m in members}) == 1
        assert final_read_values(handle, "R4")["ox"] == "v4-ox"

    def test_snapshot_transfer_equals_full_history_transfer(self):
        compacted = self.run_grow(PersistencePolicy(compact_every=2))
        full = self.run_grow(PersistencePolicy())
        for txn in ("R1", "R2", "R3", "R4"):
            assert final_read_values(compacted, txn) == final_read_values(full, txn), txn
        machines = {len(m.machine.list) for m in invariants.consensus_members(compacted)}
        assert machines == {len(m.machine.list) for m in invariants.consensus_members(full)}


# ----------------------------------------------------------------------
# The system: verdicts ride through, logs stay bounded
# ----------------------------------------------------------------------
class TestVerdictInvariance:
    @pytest.mark.parametrize("protocol", ("algorithm-b", "occ-double-collect"))
    @pytest.mark.parametrize("compact_every", (1, 2, 4))
    def test_compaction_never_changes_verdicts(self, protocol, compact_every):
        def verdict(persistence):
            result = run_experiment(
                ExperimentConfig(
                    protocol=protocol,
                    num_objects=2,
                    workload=WorkloadSpec(reads_per_reader=4, writes_per_writer=4, seed=7),
                    scheduler="chaos",
                    seed=7,
                    consensus_factor=3,
                    persistence=persistence,
                )
            )
            return result.snow.property_string()

        assert verdict(PersistencePolicy(compact_every=compact_every)) == verdict(None)

    def test_long_run_log_length_is_bounded(self):
        """The acceptance criterion: an 8-round chained workload grows the
        log well past ``compact_every``, yet every member retains only a
        bounded suffix — and the reads still see exactly the right values."""
        compact_every = 4
        bounded = run_reconfig_workload(
            "algorithm-b",
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            rounds=8,
            persistence=PersistencePolicy(compact_every=compact_every),
        )
        volatile = run_reconfig_workload(
            "algorithm-b",
            consensus_factor=3,
            replication_factor=1,
            quorum="read-one-write-all",
            rounds=8,
        )
        for txn in (f"R{i}" for i in range(1, 9)):
            assert final_read_values(bounded, txn) == final_read_values(volatile, txn), txn
        reference = invariants.consensus_members(volatile)[0].log.last_index
        for member in invariants.consensus_members(bounded):
            assert member.log.last_index >= reference  # same history length...
            assert member.log.compacted_entries > 0
            retained = len(member.log.entries)
            assert retained <= compact_every + 2, (  # ...bounded residue
                f"{member.name} retains {retained} entries past the checkpoint"
            )
