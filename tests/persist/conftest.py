"""Shared fixtures for the persistence-plane tests.

The suite reuses the fixed-workload helpers of ``tests/replication`` /
``tests/consensus`` (which thread ``persistence=`` through ``build``) and,
like those suites, re-checks the shared safety invariants after every test —
compaction-aware since PR 9, so every crash/recover/compact schedule here
also passes election safety, log matching and state-machine safety.
"""

from __future__ import annotations

import pytest

from tests import invariants


@pytest.fixture(autouse=True)
def invariant_autocheck():
    """Apply the shared safety-invariant checker to every run of this suite."""
    invariants.reset()
    yield
    invariants.check_registered()
