"""Unit tests for the stable-storage backends and the journal codec.

Both backends are driven through one shared behavioural suite (the
``StableStore`` contract), then the file backend's failure handling gets its
own corruption matrix: a torn tail is the crash-mid-write artifact and is
recovered from, while *every* other corruption — a flipped bit, a damaged
mid-chain line, an unknown record — raises :class:`IntegrityError` instead
of silently serving damaged state.
"""

from __future__ import annotations

import json

import pytest

from repro.consensus.log import LogEntry
from repro.persist import (
    FileStableStore,
    IntegrityError,
    PersistencePlane,
    PersistencePolicy,
    SimStableStore,
    decode_value,
    encode_value,
)
from repro.txn.objects import Key


def entry(term: int, rid: str, payload=()) -> LogEntry:
    return LogEntry(term=term, request_id=rid, msg_type="update-coor", payload=payload)


@pytest.fixture(params=["sim", "file"])
def store(request, tmp_path):
    if request.param == "sim":
        return SimStableStore()
    return FileStableStore(tmp_path / "member.wal")


# ----------------------------------------------------------------------
# The StableStore contract (both backends)
# ----------------------------------------------------------------------
class TestStoreContract:
    def test_starts_empty(self, store):
        assert store.is_empty()
        assert store.load_meta() is None
        assert store.load_entries() == ()
        assert store.load_commit() == 0
        assert store.load_snapshot() is None

    def test_meta_roundtrip_and_idempotence(self, store):
        store.save_meta(3, "coor.2")
        assert store.load_meta() == (3, "coor.2")
        assert not store.is_empty()
        saves = store.meta_saves
        store.save_meta(3, "coor.2")  # identical re-save: no churn
        assert store.meta_saves == saves
        store.save_meta(4, None)
        assert store.load_meta() == (4, None)
        assert store.meta_saves == saves + 1

    def test_log_append_truncate_roundtrip(self, store):
        for i in range(1, 5):
            store.log_append(i, entry(1, f"r{i}"))
        assert [i for i, _ in store.load_entries()] == [1, 2, 3, 4]
        store.log_truncate(3)  # drop indices >= 3 (conflict truncation)
        assert [i for i, _ in store.load_entries()] == [1, 2]
        store.log_append(3, entry(2, "r3b"))
        indices = dict(store.load_entries())
        assert indices[3].request_id == "r3b"

    def test_commit_cursor_only_advances(self, store):
        store.save_commit(3)
        store.save_commit(2)  # stale save: ignored
        assert store.load_commit() == 3

    def test_snapshot_prunes_covered_entries(self, store):
        for i in range(1, 6):
            store.log_append(i, entry(1, f"r{i}"))
        snapshot = {"index": 3, "term": 1, "machine": 7, "replies": {}, "config": None}
        store.save_snapshot(snapshot)
        assert store.load_snapshot()["index"] == 3
        assert [i for i, _ in store.load_entries()] == [4, 5]

    def test_snapshot_copies_do_not_alias(self, store):
        store.save_snapshot({"index": 1, "term": 1, "machine": 0, "replies": {"a": 1}})
        loaded = store.load_snapshot()
        loaded["replies"]["b"] = 2
        assert "b" not in store.load_snapshot()["replies"]


# ----------------------------------------------------------------------
# The tagged-JSON codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            "text",
            Key(z=3, writer="w1"),
            entry(2, "update-coor/W1", payload=(("key", Key(z=1, writer="w0")), ("bits", (("ox", 1),)))),
            (1, ("nested", Key.initial()), [2, 3]),
            {"replies": {"update-coor/W1": ("ack-coor", (("tag", 2),))}},
        ],
    )
    def test_roundtrip(self, value):
        encoded = encode_value(value)
        assert json.loads(json.dumps(encoded)) == encoded  # JSON-clean
        assert decode_value(encoded) == value

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(TypeError, match="dict key"):
            encode_value({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(IntegrityError, match="unknown value tag"):
            decode_value({"~": "mystery", "v": []})


# ----------------------------------------------------------------------
# File backend: reopen, torn tails, corruption
# ----------------------------------------------------------------------
def populated(path, n=4):
    store = FileStableStore(path)
    store.save_meta(2, "coor")
    for i in range(1, n + 1):
        store.log_append(i, entry(1, f"r{i}"))
    store.save_commit(n - 1)
    store.close()
    return store


class TestFileBackend:
    def test_reopen_reproduces_state(self, tmp_path):
        path = tmp_path / "m.wal"
        populated(path)
        reopened = FileStableStore(path)
        assert not reopened.recovered_tail
        assert reopened.load_meta() == (2, "coor")
        assert [i for i, _ in reopened.load_entries()] == [1, 2, 3, 4]
        assert reopened.load_commit() == 3

    def test_torn_tail_recovers_to_last_intact_record(self, tmp_path):
        path = tmp_path / "m.wal"
        populated(path)
        with open(path, "ab") as handle:
            handle.write(b'{"h": "torn-partial-wri')  # crash mid-write
        reopened = FileStableStore(path)
        assert reopened.recovered_tail
        assert [i for i, _ in reopened.load_entries()] == [1, 2, 3, 4]
        # ... and the trim is durable: a third open sees a clean journal.
        assert not FileStableStore(path).recovered_tail

    def test_torn_tail_store_stays_writable(self, tmp_path):
        path = tmp_path / "m.wal"
        populated(path, n=2)
        with open(path, "ab") as handle:
            handle.write(b"garbage-without-newline")
        reopened = FileStableStore(path)
        assert reopened.recovered_tail
        reopened.log_append(3, entry(2, "r3"))
        reopened.close()
        assert [i for i, _ in FileStableStore(path).load_entries()] == [1, 2, 3]

    def test_bit_flip_mid_chain_raises_integrity_error(self, tmp_path):
        path = tmp_path / "m.wal"
        populated(path)
        lines = path.read_bytes().splitlines()
        target = json.loads(lines[2])
        target["r"]["i"] = 99  # tamper with a record body, keep valid JSON
        lines[2] = json.dumps(target, sort_keys=True, separators=(",", ":")).encode()
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(IntegrityError, match="hash chain breaks at journal line 3"):
            FileStableStore(path)

    def test_unreadable_mid_chain_line_refuses_recovery(self, tmp_path):
        path = tmp_path / "m.wal"
        populated(path)
        lines = path.read_bytes().splitlines()
        lines[1] = b"\x00\xff not json at all"
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(IntegrityError, match="mid-chain corruption"):
            FileStableStore(path)

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "m.wal"
        store = FileStableStore(path)
        store._append_record({"k": "future-kind", "x": 1})
        store.close()
        with pytest.raises(IntegrityError, match="unknown journal record kind"):
            FileStableStore(path)

    def test_compaction_rewrites_and_bounds_the_journal(self, tmp_path):
        path = tmp_path / "m.wal"
        store = FileStableStore(path)
        store.save_meta(1, "coor")
        for i in range(1, 41):
            store.log_append(i, entry(1, f"update-coor/W{i}"))
            store.save_commit(i)
        store.save_snapshot({"index": 38, "term": 1, "machine": 38, "replies": {}})
        before, after = store.last_rewrite
        assert after < before  # 38 entry records collapsed into one snap
        store.close()
        reopened = FileStableStore(path)  # the fresh chain verifies end-to-end
        assert reopened.load_snapshot()["index"] == 38
        assert [i for i, _ in reopened.load_entries()] == [39, 40]
        assert reopened.load_commit() == 40


# ----------------------------------------------------------------------
# Policy / plane plumbing
# ----------------------------------------------------------------------
class TestPolicyAndPlane:
    def test_policy_validation(self, tmp_path):
        with pytest.raises(ValueError, match="unknown persistence backend"):
            PersistencePolicy(backend="tape")
        with pytest.raises(ValueError, match="needs a root directory"):
            PersistencePolicy(backend="file")
        with pytest.raises(ValueError, match="compact_every"):
            PersistencePolicy(compact_every=0)
        policy = PersistencePolicy(backend="file", root=str(tmp_path), compact_every=4)
        assert "compact_every=4" in policy.describe()

    def test_plane_hands_out_one_store_per_member(self, tmp_path):
        plane = PersistencePlane(PersistencePolicy(backend="file", root=str(tmp_path)))
        a, b = plane.store_for("coor"), plane.store_for("coor.2")
        assert a is plane.store_for("coor") and a is not b
        assert sorted(plane.stores()) == ["coor", "coor.2"]
        assert (tmp_path / "coor.wal").parent.exists()

    def test_of_rejects_other_types(self):
        with pytest.raises(ValueError, match="PersistencePolicy or PersistencePlane"):
            PersistencePlane.of("sim")
