"""The crash-recovery matrix: amnesiac crashes with durable member state.

The contract under test, end to end: a consensus member that crashes with
amnesia *while a stable store is attached* recovers its term/vote/log/applied
state from the store instead of resetting, so

* every cell of the crash matrix (protocol × crash target × randomized
  crash/recover points × seeds) completes with the safety invariants intact
  and reaches the same SNOW verdicts as the uninterrupted run;
* the whole thing is deterministic — running a cell twice yields a
  byte-identical trace;
* recovery also works *across builds*: a second system handed the same
  :class:`~repro.persist.PersistencePlane` (or a fresh plane over the same
  file root) starts from the first run's persisted state.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import ExperimentConfig, run_experiment
from repro.analysis.workload import WorkloadSpec
from repro.faults import ChaosScheduler
from repro.faults.plan import CrashEvent, FaultPlan, RetryPolicy
from repro.ioa import FIFOScheduler, RandomScheduler
from repro.persist import PersistencePlane, PersistencePolicy
from repro.protocols import get_protocol

from tests import invariants
from tests.consensus.conftest import COORDINATOR_PROTOCOLS, run_consensus_workload

pytestmark = pytest.mark.invariants

SEEDS = (0, 1, 2)


def amnesia_plan(server: str, at: int, recover: int, seed: int) -> FaultPlan:
    return FaultPlan(
        name=f"amnesia-{server}",
        crashes=(CrashEvent(server=server, at=at, recover=recover, preserve_state=False),),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def run_cell(protocol: str, seed: int, faults, persistence):
    config = ExperimentConfig(
        protocol=protocol,
        num_objects=2,
        workload=WorkloadSpec(reads_per_reader=3, writes_per_writer=3, seed=seed),
        scheduler="chaos",
        seed=seed,
        consensus_factor=3,
        faults=faults,
        persistence=persistence,
    )
    return run_experiment(config)


# ----------------------------------------------------------------------
# The matrix: verdicts match the uninterrupted run, runs are replayable
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("target", ("coor", "coor.2"))
@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_recovered_run_reaches_uninterrupted_verdicts(protocol, target, seed):
    """Crash point and outage length are drawn per cell from a seeded RNG;
    whatever the schedule, the durable member rejoins and the run ends with
    full availability and the fault-free run's SNOW verdicts."""
    rng = random.Random(
        (COORDINATOR_PROTOCOLS.index(protocol) * 7 + (target == "coor")) * 31 + seed
    )
    at = rng.randrange(5, 30)
    recover = at + rng.randrange(15, 50)
    baseline = run_cell(protocol, seed, faults=None, persistence=None)
    recovered = run_cell(
        protocol, seed, amnesia_plan(target, at, recover, seed), PersistencePolicy()
    )
    assert recovered.metrics.faults.availability == 1.0, (protocol, target, at, recover)
    assert recovered.snow.property_string() == baseline.snow.property_string()


@pytest.mark.parametrize("seed", SEEDS)
def test_recovered_run_is_replayable(seed):
    """Same cell twice — byte-identical traces: recovery consults only the
    store, never wall clocks or unseeded randomness."""
    import hashlib

    def run_once():
        handle = run_consensus_workload(
            "algorithm-b",
            consensus_factor=3,
            plan=amnesia_plan("coor.2", at=10, recover=45, seed=seed),
            scheduler=ChaosScheduler(base=RandomScheduler(seed=seed), seed=seed),
            seed=seed,
            persistence=PersistencePolicy(compact_every=3),
        )
        return hashlib.sha256(repr(handle.trace().signature()).encode()).hexdigest()

    assert run_once() == run_once()


@pytest.mark.parametrize("protocol", COORDINATOR_PROTOCOLS)
def test_crashed_member_recovers_state_not_just_safety(protocol):
    """White-box on one cell: the crashed member really took the recovery
    path (``recoveries`` counter), its post-run log agrees with the group,
    and its store holds exactly what the member now carries."""
    handle = run_consensus_workload(
        protocol,
        consensus_factor=3,
        plan=amnesia_plan("coor.2", at=10, recover=45, seed=3),
        scheduler=ChaosScheduler(base=RandomScheduler(seed=3), seed=3),
        persistence=PersistencePolicy(),
    )
    assert not handle.simulation.incomplete_transactions()
    member = handle.simulation.automaton("coor.2")
    assert member.recoveries >= 1
    store = handle.persistence.stores()["coor.2"]
    assert store.load_meta() == (member.election.term, member.election.voted_for)
    stored = dict(store.load_entries())
    for index in range(member.log.snapshot_index + 1, member.log.last_index + 1):
        assert stored[index] == member.log.entry(index), index


# ----------------------------------------------------------------------
# Cross-build recovery: restart-from-storage
# ----------------------------------------------------------------------
def fixed_workload(handle):
    w1 = handle.submit_write(
        {obj: f"v1-{obj}" for obj in handle.objects}, writer=handle.writers[0], txn_id="W1"
    )
    handle.submit_read(handle.objects, reader=handle.readers[0], txn_id="R1")
    handle.run_to_completion()
    return invariants.register(handle)


def build(persistence, **kwargs):
    return get_protocol("algorithm-b").build(
        num_readers=2,
        num_writers=2,
        num_objects=2,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=3,
        consensus_factor=3,
        persistence=persistence,
        **kwargs,
    )


def test_second_build_recovers_from_shared_plane():
    """Passing the *plane* (not just the policy) to a second build models a
    full-cluster restart: every member comes up with the first run's
    term, log and applied state machine instead of blank."""
    plane = PersistencePlane(PersistencePolicy())
    first = build(plane)
    fixed_workload(first)
    finished = {
        m.name: (m.election.term, m.log.last_index, m.log.commit_index, len(m.machine.list))
        for m in invariants.consensus_members(first)
    }
    second = build(plane)
    for member in invariants.consensus_members(second):
        term, last, commit, entries = finished[member.name]
        assert member.recoveries == 1
        assert member.election.term == term
        assert member.log.last_index == last
        # the commit cursor is persisted, so the applied state machine is
        # rebuilt by silent replay before the first message arrives
        assert member.log.commit_index == commit
        assert len(member.machine.list) == entries


def test_file_backend_recovers_across_planes(tmp_path):
    """The file backend survives even the plane being thrown away: a fresh
    plane over the same root re-reads the journals from disk."""
    policy = PersistencePolicy(backend="file", root=str(tmp_path), compact_every=3)
    first = build(PersistencePlane(policy))
    fixed_workload(first)
    for store in first.persistence.stores().values():
        store.close()
    reference = {
        m.name: (m.election.term, m.log.last_index, len(m.machine.list))
        for m in invariants.consensus_members(first)
    }
    second = build(PersistencePlane(policy))  # fresh plane, same directory
    for member in invariants.consensus_members(second):
        term, last, entries = reference[member.name]
        assert member.recoveries == 1
        assert member.election.term == term
        assert member.log.last_index == last
        assert len(member.machine.list) == entries
        assert not member.stable_store.recovered_tail
