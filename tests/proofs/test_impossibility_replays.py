"""Tests for the Theorem 1 / Theorem 2 proof replays and the Figure 5 reproduction."""

from __future__ import annotations

import pytest

from repro.proofs import (
    build_alpha2,
    build_beta,
    c2c_breaks_the_chain,
    replay_theorem1,
    replay_theorem2,
    run_figure5,
)


class TestTheorem1Replay:
    def test_replay_reaches_contradiction(self):
        replay = replay_theorem1()
        assert replay.ok
        assert "no strict serialization exists" in replay.contradiction_note

    def test_final_execution_has_r2_before_r1(self):
        replay = replay_theorem1()
        assert replay.final_execution.transaction_order(("R1", "R2")) == ("R2", "R1")

    def test_commuting_steps_are_mechanically_checked(self):
        replay = replay_theorem1()
        checked = [step for step in replay.steps if step.mechanically_checked]
        justified = [step for step in replay.steps if not step.mechanically_checked]
        # Lemmas 7, 8, 11, 12, 14 are pure commutes; 4-6, 9, 10, 13 are constructions.
        assert len(checked) == 5
        assert len(justified) == 4

    def test_every_lemma_appears_in_order(self):
        replay = replay_theorem1()
        lemmas = [step.lemma for step in replay.steps]
        assert any("Lemma 7" in lemma for lemma in lemmas)
        assert any("Lemma 14" in lemma for lemma in lemmas)
        assert lemmas == sorted(lemmas, key=lambda name: lemmas.index(name))

    def test_alpha2_shape(self):
        alpha2 = build_alpha2()
        assert alpha2.names()[0] == "P_k"
        assert alpha2.names()[-1] == "S"
        assert alpha2.get("F1x").actor == "sx"
        assert alpha2.get("E2").txn == "R2"

    def test_describe_renders_chain(self):
        text = replay_theorem1().describe()
        assert "Theorem 1" in text
        assert "CONTRADICTION" in text
        assert "α₁₀" in text or "alpha10" in text


class TestTheorem2Replay:
    def test_replay_reaches_contradiction(self):
        replay = replay_theorem2()
        assert replay.ok
        assert "before INV(W)" in replay.contradiction_note

    def test_final_execution_has_read_before_write(self):
        replay = replay_theorem2()
        assert replay.final_execution.transaction_order(("R1", "W")) == ("R1", "W")

    def test_case_analysis_steps_present(self):
        replay = replay_theorem2()
        lemmas = " ".join(step.lemma for step in replay.steps)
        assert "case (i)" in lemmas
        assert "case (iii)" in lemmas
        assert "case (iv)" in lemmas

    def test_mix_of_checked_and_justified_steps(self):
        replay = replay_theorem2()
        assert replay.checked_steps() >= 3
        assert any(not step.mechanically_checked for step in replay.steps)

    def test_beta_shape(self):
        beta = build_beta()
        assert beta.get("send_reqs").actor == "r1"
        assert beta.get("Wx").receives == frozenset({"w_x"})

    def test_c2c_dependency_blocks_the_chain(self):
        blocked, reason = c2c_breaks_the_chain()
        assert blocked
        assert "info" in reason

    def test_beta_with_c2c_has_reader_dependency(self):
        beta = build_beta(c2c_info_message=True)
        assert "info" in beta.get("send_reqs").receives
        assert "info" in beta.get("INV_W").sends


class TestFigure5:
    def test_anomaly_reproduced(self):
        result = run_figure5()
        assert result.anomaly_reproduced

    def test_read_mixes_w3_and_w1(self):
        result = run_figure5()
        assert result.read_result.value_for("ox") == "a3"
        assert result.read_result.value_for("oy") == "b1"

    def test_accepted_in_first_round(self):
        result = run_figure5()
        assert result.accepted_first_round

    def test_history_not_strictly_serializable(self):
        result = run_figure5()
        assert not result.serializability.ok
        assert result.serializability.violations

    def test_w2_precedes_w3_in_real_time(self):
        result = run_figure5()
        w2 = result.history.entry(result.w2_id)
        w3 = result.history.entry(result.w3_id)
        assert w2.precedes(w3)

    def test_read_concurrent_with_all_writes(self):
        result = run_figure5()
        read_entry = result.history.entry(result.read_txn_id)
        for write_id in (result.w1_id, result.w2_id, result.w3_id):
            assert read_entry.overlaps(result.history.entry(write_id))

    def test_eiger_still_non_blocking_and_one_version_here(self):
        """The point of Section 6: latency is bounded, it is S that fails."""
        result = run_figure5()
        assert result.snow_report.non_blocking
        assert result.snow_report.one_version
        assert result.snow_report.writes_complete
        assert not result.snow_report.strict_serializable

    def test_describe_summarises_outcome(self):
        text = run_figure5().describe()
        assert "Figure 5" in text
        assert "anomaly reproduced: True" in text
