"""Tests for fragment extraction and the commuting/indistinguishability lemmas."""

from __future__ import annotations

import pytest

from repro.ioa import ActionKind
from repro.ioa.errors import TraceError
from repro.ioa.trace import Trace
from repro.proofs.fragments import (
    can_commute,
    commute_adjacent,
    extract_read_fragments,
    indistinguishable_fragments,
    returned_value,
)
from tests.conftest import build_system, run_simple_workload


def algorithm_a_fragments(num_writers=1):
    handle = build_system("algorithm-a", num_writers=num_writers)
    w = handle.submit_write({"ox": "x1", "oy": "y1"})
    r = handle.submit_read(after=[w])
    handle.run_to_completion()
    fragments = extract_read_fragments(handle.trace(), r, handle.readers[0], handle.servers)
    return handle, r, fragments


class TestExtraction:
    def test_extracts_invocation_fragment_at_reader(self):
        handle, r, fragments = algorithm_a_fragments()
        assert fragments.invocation.single_actor() == handle.readers[0]
        assert fragments.invocation.actions[0].kind == ActionKind.INVOKE

    def test_extracts_non_blocking_fragments_per_server(self):
        handle, r, fragments = algorithm_a_fragments()
        assert set(fragments.servers()) == set(handle.servers)
        for server, fragment in fragments.non_blocking:
            assert fragment.single_actor() == server
            assert fragment.actions[0].kind == ActionKind.RECV
            assert fragment.actions[-1].kind == ActionKind.SEND

    def test_extracts_completion_fragment_ending_with_response(self):
        handle, r, fragments = algorithm_a_fragments()
        assert fragments.completion.single_actor() == handle.readers[0]
        assert fragments.completion.actions[-1].kind == ActionKind.RESPOND

    def test_non_blocking_fragments_carry_the_returned_values(self):
        handle, r, fragments = algorithm_a_fragments()
        values = {server: returned_value(fragment) for server, fragment in fragments.non_blocking}
        assert values["sx"] == "x1"
        assert values["sy"] == "y1"

    def test_describe_mentions_anatomy(self):
        _, r, fragments = algorithm_a_fragments()
        text = fragments.describe()
        assert "I(" in text and "E(" in text and "F_sx" in text

    def test_extraction_fails_for_incomplete_transaction(self):
        handle = build_system("algorithm-a", num_writers=1)
        r = handle.submit_read()
        handle.simulation.run(max_new_steps=2)
        with pytest.raises(TraceError):
            extract_read_fragments(handle.trace(), r, handle.readers[0], handle.servers)

    def test_extraction_fails_for_unknown_transaction(self):
        handle, _, _ = algorithm_a_fragments()
        with pytest.raises(TraceError):
            extract_read_fragments(handle.trace(), "nope", handle.readers[0], handle.servers)

    def test_fragment_for_server_lookup(self):
        _, _, fragments = algorithm_a_fragments()
        assert fragments.fragment_for_server("sx").single_actor() == "sx"
        with pytest.raises(KeyError):
            fragments.fragment_for_server("sz")


class TestCommuting:
    def test_fragments_at_distinct_servers_commute(self):
        _, _, fragments = algorithm_a_fragments()
        fx = fragments.fragment_for_server("sx")
        fy = fragments.fragment_for_server("sy")
        check = can_commute(fx, fy)
        assert check.allowed

    def test_fragments_at_same_automaton_do_not_commute(self):
        _, _, fragments = algorithm_a_fragments()
        check = can_commute(fragments.invocation, fragments.completion)
        assert not check.allowed
        assert "distinct automata" in check.reason or "both fragments occur" in check.reason

    def test_commute_adjacent_swaps_and_preserves_channels(self):
        handle, r, fragments = algorithm_a_fragments()
        fx = fragments.fragment_for_server("sx")
        fy = fragments.fragment_for_server("sy")
        actions = list(handle.trace().actions)
        # Only attempt when they are adjacent in the trace (true under FIFO for
        # this sequential workload); otherwise build an adjacent sub-sequence.
        start = min(fx.start_index, fy.start_index)
        end = max(fx.end_index, fy.end_index)
        window = [a for a in actions if a.index < start or a.index > end]
        ordered = (
            [a for a in actions if a.index < start]
            + list(fx.actions)
            + list(fy.actions)
            + [a for a in actions if a.index > end]
        )
        swapped = commute_adjacent(ordered, fx, fy, validate=True)
        # After the swap, sy's fragment comes first.
        positions = [a.actor for a in swapped if a.kind == ActionKind.RECV and a.message is not None and a.message.get("txn") == r and a.actor in handle.servers]
        assert positions[0] == "sy"

    def test_commute_adjacent_rejects_non_adjacent_fragments(self):
        handle, _, fragments = algorithm_a_fragments()
        fx = fragments.fragment_for_server("sx")
        fy = fragments.fragment_for_server("sy")
        # Insert an unrelated action between them so the block is not contiguous.
        actions = list(fx.actions) + [fragments.completion.actions[0]] + list(fy.actions)
        with pytest.raises(TraceError):
            commute_adjacent(actions, fx, fy)

    def test_commute_adjacent_rejects_same_actor(self):
        _, _, fragments = algorithm_a_fragments()
        with pytest.raises(TraceError):
            commute_adjacent(
                list(fragments.invocation.actions) + list(fragments.completion.actions),
                fragments.invocation,
                fragments.completion,
            )


class TestIndistinguishability:
    def test_same_fragment_is_indistinguishable_from_itself(self):
        _, _, fragments = algorithm_a_fragments()
        fx = fragments.fragment_for_server("sx")
        assert indistinguishable_fragments(fx, fx)

    def test_fragments_from_identical_runs_are_indistinguishable(self):
        _, _, first = algorithm_a_fragments()
        _, _, second = algorithm_a_fragments()
        fx_first = first.fragment_for_server("sx")
        fx_second = second.fragment_for_server("sx")
        # Message ids differ across runs, so strict step equality does not hold,
        # but the returned value (Lemma 3's conclusion) is the same.
        assert returned_value(fx_first) == returned_value(fx_second) == "x1"

    def test_different_values_are_distinguishable(self):
        handle = build_system("algorithm-a", num_writers=1)
        w1 = handle.submit_write({"ox": "x1", "oy": "y1"})
        r1 = handle.submit_read(after=[w1])
        w2 = handle.submit_write({"ox": "x2", "oy": "y2"}, after=[r1])
        r2 = handle.submit_read(after=[w2])
        handle.run_to_completion()
        first = extract_read_fragments(handle.trace(), r1, handle.readers[0], handle.servers)
        second = extract_read_fragments(handle.trace(), r2, handle.readers[0], handle.servers)
        assert not indistinguishable_fragments(
            first.fragment_for_server("sx"), second.fragment_for_server("sx")
        )
        assert returned_value(second.fragment_for_server("sx")) == "x2"
