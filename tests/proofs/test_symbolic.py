"""Tests for the symbolic execution machinery used by the proof replays."""

from __future__ import annotations

import pytest

from repro.ioa.errors import TraceError
from repro.proofs.symbolic import ProofReplay, SymbolicExecution, fragment


def simple_execution():
    return SymbolicExecution(
        [
            fragment("P", "*", movable=False),
            fragment("A", "r1", sends={"m1"}),
            fragment("B", "sx", receives={"m1"}, sends={"v1"}),
            fragment("C", "sy", sends={"v2"}),
            fragment("D", "r1", receives={"v1", "v2"}),
        ],
        name="test",
    )


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(TraceError):
            SymbolicExecution([fragment("A", "r1"), fragment("A", "r2")])

    def test_names_and_index_of(self):
        execution = simple_execution()
        assert execution.names() == ("P", "A", "B", "C", "D")
        assert execution.index_of("C") == 3
        with pytest.raises(TraceError):
            execution.index_of("missing")

    def test_copy_is_independent(self):
        execution = simple_execution()
        duplicate = execution.copy(name="copy")
        duplicate.swap_adjacent(2)
        assert execution.names() != duplicate.names()

    def test_describe_includes_actors(self):
        assert "B@sx" in simple_execution().describe()


class TestSwapRules:
    def test_swap_distinct_actors_without_dependency(self):
        execution = simple_execution()
        reason = execution.swap_adjacent(2)  # B (sx) and C (sy)
        assert "no message dependency" in reason
        assert execution.names() == ("P", "A", "C", "B", "D")

    def test_swap_refused_for_message_dependency(self):
        execution = simple_execution()
        # A sends m1 which B receives: A ∘ B cannot become B ∘ A.
        with pytest.raises(TraceError):
            execution.swap_adjacent(1)

    def test_swap_refused_for_same_actor(self):
        execution = SymbolicExecution([fragment("X", "r1"), fragment("Y", "r1")])
        with pytest.raises(TraceError):
            execution.swap_adjacent(0)

    def test_swap_refused_for_pinned_blocks(self):
        execution = simple_execution()
        with pytest.raises(TraceError):
            execution.swap_adjacent(0)  # P is pinned

    def test_swap_index_bounds(self):
        execution = simple_execution()
        with pytest.raises(TraceError):
            execution.swap_adjacent(10)

    def test_can_swap_explanations(self):
        execution = simple_execution()
        allowed, reason = execution.can_swap(execution.get("B"), execution.get("C"))
        assert allowed
        allowed, reason = execution.can_swap(execution.get("A"), execution.get("B"))
        assert not allowed
        assert "m1" in reason


class TestMoves:
    def test_move_before(self):
        execution = simple_execution()
        reasons = execution.move_before("C", "A")
        assert execution.names() == ("P", "C", "A", "B", "D")
        assert len(reasons) == 2

    def test_move_after(self):
        execution = SymbolicExecution(
            [
                fragment("P", "*", movable=False),
                fragment("A", "r1"),
                fragment("B", "sx"),
                fragment("C", "sy"),
            ]
        )
        execution.move_after("A", "C")
        assert execution.names() == ("P", "B", "C", "A")

    def test_move_blocked_by_dependency_raises(self):
        execution = simple_execution()
        # D receives v1 sent by B, so B cannot move after D.
        with pytest.raises(TraceError):
            execution.move_after("B", "D")

    def test_annotate_replaces_note(self):
        execution = simple_execution()
        execution.annotate("B", "returns x0")
        assert execution.get("B").note == "returns x0"


class TestTransactionOrder:
    def test_order_by_last_fragment(self):
        execution = SymbolicExecution(
            [
                fragment("I1", "r1", txn="R1"),
                fragment("I2", "r2", txn="R2"),
                fragment("E2", "r2", txn="R2"),
                fragment("E1", "r1", txn="R1"),
            ]
        )
        assert execution.transaction_order(("R1", "R2")) == ("R2", "R1")


class TestProofReplay:
    def test_record_and_describe(self):
        replay = ProofReplay(theorem="test theorem")
        execution = simple_execution()
        replay.record("Lemma X", "a checked step", execution, mechanically_checked=True)
        replay.record("Lemma Y", "a justified step", execution, mechanically_checked=False)
        assert replay.checked_steps() == 1
        assert len(replay.steps) == 2
        text = replay.describe()
        assert "Lemma X" in text and "justified" in text
        assert not replay.ok
        replay.contradiction_found = True
        replay.contradiction_note = "done"
        assert "CONTRADICTION" in replay.describe()
