"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import get_protocol


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "invariants: safety-invariant gate tests (consensus + reconfiguration); "
        "run as a fast CI gate via `-m invariants`",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Dump the failing test's simulation traces when ``CHAOS_TRACE_DIR`` is
    set (the CI chaos-grid job uploads the directory as an artifact, so a
    red nightly cell arrives with its replayable schedule attached)."""
    outcome = yield
    report = outcome.get_result()
    trace_dir = os.environ.get("CHAOS_TRACE_DIR")
    # Both phases matter: in-body assertions fail in "call", the autouse
    # safety-invariant fixtures fail in "teardown" (check_registered keeps
    # the handles registered on a violation exactly so they land here).
    if not trace_dir or report.when not in ("call", "teardown") or not report.failed:
        return
    from tests import invariants

    out = Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9._-]+", "_", item.nodeid)[:180]
    for index, handle in enumerate(invariants.REGISTERED):
        try:
            text = handle.describe() + "\n\n" + handle.trace().describe()
        except Exception as exc:  # a half-built handle must not mask the failure
            text = f"<trace unavailable: {exc!r}>"
        (out / f"{stem}.{report.when}.{index}.trace.txt").write_text(
            text, encoding="utf-8"
        )
        # The same execution as a Chrome trace-event timeline (open in
        # Perfetto), derived post-mortem — no observability plane needed.
        simulation = getattr(handle, "simulation", None)
        if simulation is None:
            continue
        try:
            from repro.obs import derive_spans, write_chrome_trace

            write_chrome_trace(
                derive_spans(simulation),
                out / f"{stem}.{report.when}.{index}.timeline.json",
            )
        except Exception:  # never let the renderer mask the real failure
            pass
        # The end-of-run health report (text + JSON): from the run's own
        # health plane when one was attached, otherwise derived post-mortem
        # from the retained trace — a red cell arrives with its SLO/error
        # picture next to the schedule.
        try:
            import json

            from repro.obs import HealthView, derive_health

            plane = getattr(getattr(handle, "obs", None), "health", None)
            view = HealthView(plane) if plane is not None else derive_health(simulation)
            base = f"{stem}.{report.when}.{index}"
            (out / f"{base}.health.txt").write_text(
                view.render() + "\n", encoding="utf-8"
            )
            (out / f"{base}.health.json").write_text(
                json.dumps(view.report(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except Exception:  # the health renderer must not mask the failure either
            pass


def build_system(
    protocol_name: str,
    num_readers: int = 1,
    num_writers: int = 1,
    num_objects: int = 2,
    scheduler=None,
    seed: int = 0,
    **kwargs,
):
    """Build a protocol system with sensible defaults for tests."""
    protocol = get_protocol(protocol_name)
    if not protocol.supports_multiple_readers:
        num_readers = 1
    return protocol.build(
        num_readers=num_readers,
        num_writers=num_writers,
        num_objects=num_objects,
        scheduler=scheduler or FIFOScheduler(),
        seed=seed,
        **kwargs,
    )


def run_simple_workload(handle, rounds: int = 2, sequential: bool = False):
    """Submit a small contending workload and run it to completion.

    Returns ``(read_ids, write_ids)``.  With ``sequential`` each read waits
    for the previous write (useful when asserting exact read results).
    """
    read_ids, write_ids = [], []
    previous_write = None
    for index in range(1, rounds + 1):
        for writer in handle.writers:
            updates = {obj: f"{writer}-{index}" for obj in handle.objects}
            after = [previous_write] if (sequential and previous_write) else ()
            previous_write = handle.submit_write(updates, writer=writer, after=after)
            write_ids.append(previous_write)
        for reader in handle.readers:
            after = [previous_write] if sequential and previous_write else ()
            read_ids.append(handle.submit_read(handle.objects, reader=reader, after=after))
    handle.run_to_completion()
    return read_ids, write_ids


@pytest.fixture
def fifo_scheduler():
    return FIFOScheduler()


@pytest.fixture
def random_scheduler():
    return RandomScheduler(seed=7)
