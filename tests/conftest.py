"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import get_protocol


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "invariants: safety-invariant gate tests (consensus + reconfiguration); "
        "run as a fast CI gate via `-m invariants`",
    )


def build_system(
    protocol_name: str,
    num_readers: int = 1,
    num_writers: int = 1,
    num_objects: int = 2,
    scheduler=None,
    seed: int = 0,
    **kwargs,
):
    """Build a protocol system with sensible defaults for tests."""
    protocol = get_protocol(protocol_name)
    if not protocol.supports_multiple_readers:
        num_readers = 1
    return protocol.build(
        num_readers=num_readers,
        num_writers=num_writers,
        num_objects=num_objects,
        scheduler=scheduler or FIFOScheduler(),
        seed=seed,
        **kwargs,
    )


def run_simple_workload(handle, rounds: int = 2, sequential: bool = False):
    """Submit a small contending workload and run it to completion.

    Returns ``(read_ids, write_ids)``.  With ``sequential`` each read waits
    for the previous write (useful when asserting exact read results).
    """
    read_ids, write_ids = [], []
    previous_write = None
    for index in range(1, rounds + 1):
        for writer in handle.writers:
            updates = {obj: f"{writer}-{index}" for obj in handle.objects}
            after = [previous_write] if (sequential and previous_write) else ()
            previous_write = handle.submit_write(updates, writer=writer, after=after)
            write_ids.append(previous_write)
        for reader in handle.readers:
            after = [previous_write] if sequential and previous_write else ()
            read_ids.append(handle.submit_read(handle.objects, reader=reader, after=after))
    handle.run_to_completion()
    return read_ids, write_ids


@pytest.fixture
def fifo_scheduler():
    return FIFOScheduler()


@pytest.fixture
def random_scheduler():
    return RandomScheduler(seed=7)
