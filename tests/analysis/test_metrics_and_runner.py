"""Tests for metric aggregation, the experiment runner, sweeps and reporting."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    AggregateStats,
    ExperimentConfig,
    WorkloadSpec,
    collect_metrics,
    compare_protocols,
    format_latency_comparison,
    format_markdown_table,
    format_series,
    format_table,
    latency_comparison_rows,
    make_scheduler,
    percentile,
    run_experiment,
    run_many,
    sweep_read_size,
    sweep_rounds_vs_contention,
    sweep_versions_vs_writers,
)
from repro.ioa import FIFOScheduler, LIFOScheduler, RandomScheduler
from tests.conftest import build_system, run_simple_workload


class TestAggregateStats:
    def test_percentile_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.5) == 5
        assert percentile(values, 0.95) == 10
        assert math.isnan(percentile([], 0.5))

    def test_from_values(self):
        stats = AggregateStats.from_values([1, 2, 3, 4])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1 and stats.maximum == 4

    def test_empty_values(self):
        stats = AggregateStats.from_values([])
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert stats.describe() == "n=0"

    def test_describe_formats(self):
        assert "p95" in AggregateStats.from_values([1, 2, 3]).describe()


class TestCollectMetrics:
    def test_metrics_from_algorithm_a_run(self):
        handle = build_system("algorithm-a", num_writers=2)
        read_ids, write_ids = run_simple_workload(handle, rounds=2)
        metrics = collect_metrics(handle.simulation, protocol_name="algorithm-a")
        assert len(metrics.reads()) == len(read_ids)
        assert len(metrics.writes()) == len(write_ids)
        assert metrics.max_read_rounds() == 1
        assert metrics.max_versions() == 1
        assert metrics.total_messages > 0
        assert metrics.total_steps > 0

    def test_metrics_capture_versions_for_algorithm_c(self):
        handle = build_system("algorithm-c", num_readers=1, num_writers=2)
        run_simple_workload(handle, rounds=2)
        metrics = collect_metrics(handle.simulation, protocol_name="algorithm-c")
        assert metrics.max_versions() > 1

    def test_describe_lists_sections(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        run_simple_workload(handle, rounds=1)
        text = collect_metrics(handle.simulation, "algorithm-b").describe()
        assert "read rounds" in text and "write latency" in text


class TestRunner:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("fifo"), FIFOScheduler)
        assert isinstance(make_scheduler("lifo"), LIFOScheduler)
        assert isinstance(make_scheduler("random", seed=3), RandomScheduler)
        with pytest.raises(ValueError):
            make_scheduler("quantum")

    def test_run_experiment_end_to_end(self):
        config = ExperimentConfig(
            protocol="algorithm-b",
            num_readers=2,
            num_writers=2,
            num_objects=3,
            workload=WorkloadSpec(reads_per_reader=3, writes_per_writer=2, seed=1),
            scheduler="random",
            seed=1,
        )
        result = run_experiment(config)
        assert result.protocol == "algorithm-b"
        assert result.snow is not None and result.snow.satisfies_snw
        assert result.metrics.max_read_rounds() == 2
        assert len(result.read_ids) == 6
        assert "algorithm-b" in result.describe()

    def test_run_experiment_without_property_checks(self):
        config = ExperimentConfig(protocol="simple-rw", check_properties=False)
        result = run_experiment(config)
        assert result.snow is None
        assert result.property_string() == "????"

    def test_single_reader_protocols_clamped(self):
        config = ExperimentConfig(protocol="algorithm-a", num_readers=3, num_writers=2)
        result = run_experiment(config)
        assert result.snow.satisfies_snow

    def test_with_seed_rebinds_workload_seed(self):
        config = ExperimentConfig(protocol="algorithm-b").with_seed(9)
        assert config.seed == 9
        assert config.workload.seed == 9

    def test_run_many_and_compare(self):
        results = compare_protocols(
            ["simple-rw", "algorithm-a"],
            workload=WorkloadSpec(reads_per_reader=2, writes_per_writer=1, seed=0),
            num_objects=2,
            check_properties=False,
        )
        assert [r.protocol for r in results] == ["simple-rw", "algorithm-a"]
        assert all(r.metrics.reads() for r in results)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2], ["long-value", 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_format_markdown_table(self):
        text = format_markdown_table(["x", "y"], [[1, 2]])
        assert text.splitlines()[1] == "|---|---|"
        assert "| 1 | 2 |" in text

    def test_latency_comparison_rows(self):
        results = compare_protocols(
            ["simple-rw", "algorithm-b"],
            workload=WorkloadSpec(reads_per_reader=2, writes_per_writer=1, seed=2),
            check_properties=True,
        )
        rows = latency_comparison_rows(results)
        assert len(rows) == 2
        table = format_latency_comparison(results)
        assert "protocol" in table and "algorithm-b" in table

    def test_format_series(self):
        text = format_series("x", {"s1": [(1, 10), (2, 20)], "s2": [(1, 5)]}, title="series")
        assert "series" in text
        assert "10" in text and "20" in text


class TestSweeps:
    def test_versions_vs_writers_sweep_is_monotone_ish(self):
        sweep = sweep_versions_vs_writers(writer_counts=(1, 3), writes_per_writer=3, reads_per_reader=4)
        series = sweep.max_versions_series()
        assert len(series) == 2
        assert series[1][1] >= series[0][1]

    def test_rounds_vs_contention_sweep_shapes(self):
        sweeps = sweep_rounds_vs_contention(
            protocols=("algorithm-b", "occ-double-collect"), writer_counts=(1, 3)
        )
        b_rounds = dict(sweeps["algorithm-b"].max_rounds_series())
        occ_rounds = dict(sweeps["occ-double-collect"].max_rounds_series())
        assert set(b_rounds.values()) == {2}
        assert occ_rounds[3] >= occ_rounds[1] >= 2

    def test_read_size_sweep_includes_all_protocols(self):
        sweeps = sweep_read_size(protocols=("simple-rw", "algorithm-b"), read_sizes=(1, 2), num_objects=3)
        assert set(sweeps) == {"simple-rw", "algorithm-b"}
        assert len(sweeps["simple-rw"].mean_read_latency_series()) == 2
