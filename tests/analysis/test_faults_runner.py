"""Runner/metrics/sweep integration of the fault plane, and the scheduler registry."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentConfig,
    WorkloadSpec,
    fault_grid_rows,
    make_scheduler,
    run_experiment,
    scheduler_names,
    sweep_fault_grid,
)
from repro.faults import ChaosScheduler, FaultPlan, fail_stop, lossy_network


class TestSchedulerRegistry:
    def test_all_names_instantiate(self):
        for name in scheduler_names():
            assert make_scheduler(name, seed=1) is not None

    def test_chaos_is_registered(self):
        assert "chaos" in scheduler_names()
        assert isinstance(make_scheduler("chaos", seed=2), ChaosScheduler)

    def test_unknown_name_lists_every_valid_scheduler(self):
        with pytest.raises(ValueError) as excinfo:
            make_scheduler("definitely-not-a-scheduler")
        message = str(excinfo.value)
        assert "definitely-not-a-scheduler" in message
        for name in scheduler_names():
            assert name in message

    def test_register_scheduler_rejects_duplicates(self):
        from repro.analysis import register_scheduler

        with pytest.raises(ValueError):
            register_scheduler("fifo", lambda seed: None)


WORKLOAD = WorkloadSpec(reads_per_reader=4, writes_per_writer=2, read_size=2, write_size=2, seed=5)


def _config(**overrides):
    defaults = dict(
        protocol="simple-rw",
        num_readers=2,
        num_writers=2,
        num_objects=2,
        workload=WORKLOAD,
        scheduler="chaos",
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunnerWithFaults:
    def test_no_faults_field_means_no_fault_metrics(self):
        result = run_experiment(_config(scheduler="fifo"))
        assert result.metrics.faults is None

    def test_inert_plan_populates_metrics_with_full_availability(self):
        result = run_experiment(_config(faults=FaultPlan.none()))
        faults = result.metrics.faults
        assert faults is not None
        assert faults.availability == 1.0
        assert faults.submitted == faults.completed == 12

    def test_lossy_plan_counts_retransmissions(self):
        result = run_experiment(_config(faults=lossy_network(seed=5)))
        faults = result.metrics.faults
        assert faults.availability == 1.0
        assert faults.retransmissions > 0
        assert faults.messages_dropped > 0

    def test_fail_stop_reports_partial_availability_instead_of_raising(self):
        result = run_experiment(_config(faults=fail_stop(server="sx", at=4, seed=5)))
        faults = result.metrics.faults
        assert 0.0 <= faults.availability < 1.0
        assert faults.read_availability < 1.0 or faults.write_availability < 1.0
        # completed-only latency is still well-defined
        assert result.metrics.read_latency_steps.count == faults.read_completed

    def test_faulted_config_describe_mentions_the_plan(self):
        assert "lossy" in _config(faults=lossy_network(seed=5)).describe()

    def test_latency_plan_requires_the_chaos_scheduler(self):
        from repro.faults import FixedLatency

        plan = FaultPlan(name="slow", latency=FixedLatency(50))
        with pytest.raises(ValueError, match="chaos"):
            run_experiment(_config(scheduler="fifo", faults=plan))

    def test_virtual_latency_sees_the_latency_model(self):
        """Regression: trace-step latency is blind to virtual-time delays;
        the virtual-clock latency must grow with the configured model."""
        from repro.faults import FixedLatency

        baseline = run_experiment(_config(faults=FaultPlan.none()))
        slowed = run_experiment(_config(faults=FaultPlan(name="slow", latency=FixedLatency(40))))
        base_lat = baseline.metrics.faults.read_latency_virtual
        slow_lat = slowed.metrics.faults.read_latency_virtual
        assert slow_lat.count == base_lat.count > 0
        # each read needs at least one 40-step round trip more than baseline
        assert slow_lat.minimum >= base_lat.minimum + 40
        assert slow_lat.mean > base_lat.mean + 40


class TestFaultGrid:
    def test_grid_shape_and_rows(self):
        grid = sweep_fault_grid(
            protocols=("simple-rw", "algorithm-b"),
            num_objects=2,
            workload=WORKLOAD,
            seed=5,
        )
        rows = fault_grid_rows(grid)
        protocols = {row["protocol"] for row in rows}
        scenarios = {row["scenario"] for row in rows}
        assert protocols == {"simple-rw", "algorithm-b"}
        assert len(scenarios) >= 5 and "none" in scenarios
        assert len(rows) == len(protocols) * len(scenarios)
        for row in rows:
            assert "availability" in row and "snow" in row

    def test_default_crash_scenario_targets_a_real_server(self):
        grid = sweep_fault_grid(protocols=("simple-rw",), num_objects=2, workload=WORKLOAD, seed=5)
        crash_row = [r for r in fault_grid_rows(grid) if r["scenario"] == "crash-recover"][0]
        assert crash_row["crashes"] == 1  # the crash actually happened
