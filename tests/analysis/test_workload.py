"""Tests for workload generation and submission."""

from __future__ import annotations

import pytest

from repro.analysis.workload import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    read_heavy_spec,
    submit_workload,
    write_heavy_spec,
)
from tests.conftest import build_system


READERS = ("r1", "r2")
WRITERS = ("w1",)
OBJECTS = ("o1", "o2", "o3", "o4")


class TestGeneration:
    def test_counts_match_spec(self):
        spec = WorkloadSpec(reads_per_reader=3, writes_per_writer=2)
        workload = generate_workload(spec, READERS, WRITERS, OBJECTS)
        assert len(workload.reads) == 3 * len(READERS)
        assert len(workload.writes) == 2 * len(WRITERS)
        assert workload.total_transactions == 8

    def test_transaction_sizes_respected(self):
        spec = WorkloadSpec(read_size=2, write_size=3, reads_per_reader=4, writes_per_writer=4)
        workload = generate_workload(spec, READERS, WRITERS, OBJECTS)
        assert all(len(txn.objects) == 2 for _, txn in workload.reads)
        assert all(len(txn.objects) == 3 for _, txn in workload.writes)

    def test_sizes_clamped_to_object_count(self):
        spec = WorkloadSpec(read_size=99, write_size=0)
        workload = generate_workload(spec, READERS, WRITERS, OBJECTS)
        assert all(len(txn.objects) == len(OBJECTS) for _, txn in workload.reads)
        assert all(len(txn.objects) == 1 for _, txn in workload.writes)

    def test_deterministic_per_seed(self):
        spec = WorkloadSpec(seed=5)
        first = generate_workload(spec, READERS, WRITERS, OBJECTS)
        second = generate_workload(spec, READERS, WRITERS, OBJECTS)
        assert [txn.objects for _, txn in first.reads] == [txn.objects for _, txn in second.reads]
        assert [txn.updates and tuple(o for o, _ in txn.updates) for _, txn in first.writes] == [
            tuple(o for o, _ in txn.updates) for _, txn in second.writes
        ]

    def test_different_seeds_differ(self):
        base = WorkloadSpec(seed=1, reads_per_reader=10, read_size=2)
        other = WorkloadSpec(seed=2, reads_per_reader=10, read_size=2)
        first = generate_workload(base, READERS, WRITERS, OBJECTS)
        second = generate_workload(other, READERS, WRITERS, OBJECTS)
        assert [txn.objects for _, txn in first.reads] != [txn.objects for _, txn in second.reads]

    def test_zipf_skew_concentrates_on_popular_objects(self):
        uniform = generate_workload(
            WorkloadSpec(zipf_s=0.0, reads_per_reader=200, read_size=1, seed=3), READERS, WRITERS, OBJECTS
        )
        skewed = generate_workload(
            WorkloadSpec(zipf_s=2.5, reads_per_reader=200, read_size=1, seed=3), READERS, WRITERS, OBJECTS
        )

        def popularity(workload, obj):
            return sum(1 for _, txn in workload.reads if obj in txn.objects)

        assert popularity(skewed, OBJECTS[0]) > popularity(uniform, OBJECTS[0])

    def test_write_values_are_unique_per_writer_and_sequence(self):
        spec = WorkloadSpec(writes_per_writer=3, write_size=2)
        workload = generate_workload(spec, READERS, ("w1", "w2"), OBJECTS)
        values = [value for _, txn in workload.writes for _, value in txn.updates]
        assert len(values) == len(set(values))

    def test_read_ratio(self):
        workload = generate_workload(WorkloadSpec(reads_per_reader=5, writes_per_writer=5), READERS, WRITERS, OBJECTS)
        assert workload.read_ratio() == pytest.approx(10 / 15)

    def test_spec_presets(self):
        assert read_heavy_spec().reads_per_reader > read_heavy_spec().writes_per_writer
        assert write_heavy_spec().writes_per_writer > write_heavy_spec().reads_per_reader

    def test_spec_describe(self):
        assert "reads/reader" in WorkloadSpec().describe()


class TestSubmission:
    def test_submit_runs_to_completion(self):
        handle = build_system("algorithm-b", num_readers=2, num_writers=1, num_objects=3)
        workload = generate_workload(
            WorkloadSpec(reads_per_reader=2, writes_per_writer=2, read_size=2, write_size=2),
            handle.readers,
            handle.writers,
            handle.objects,
        )
        read_ids, write_ids = submit_workload(handle, workload)
        handle.run_to_completion()
        assert len(read_ids) == len(workload.reads)
        assert len(write_ids) == len(workload.writes)
        records = {r.txn_id: r for r in handle.transaction_records()}
        assert all(records[t].complete for t in read_ids + write_ids)

    def test_submission_interleaves_clients(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        workload = generate_workload(
            WorkloadSpec(reads_per_reader=2, writes_per_writer=2), handle.readers, handle.writers, handle.objects
        )
        submit_workload(handle, workload)
        order = [r.client for r in handle.transaction_records()]
        # Round-robin submission alternates clients rather than batching one client first.
        assert order[0] != order[1]
