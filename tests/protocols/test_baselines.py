"""Tests for the baseline protocols: naive SNOW candidate, strict 2PL, OCC, simple reads."""

from __future__ import annotations

import pytest

from repro.ioa import AdversarialScheduler, FIFOScheduler, RandomScheduler
from repro.protocols import LockingProtocol, NaiveSnowCandidate, OccProtocol, SimpleReadWrite
from tests.conftest import build_system, run_simple_workload


class TestNaiveSnowCandidate:
    def test_now_properties_hold(self):
        handle = build_system("naive-snow", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=2))
        run_simple_workload(handle, rounds=2)
        report = handle.snow_report()
        assert report.non_blocking
        assert report.one_round and report.one_version
        assert report.writes_complete

    def test_sequential_use_is_serializable(self):
        handle = build_system("naive-snow", num_readers=1, num_writers=1)
        w = handle.submit_write({"ox": 1, "oy": 1})
        r = handle.submit_read(after=[w])
        handle.run_to_completion()
        assert handle.serializability().ok

    def test_s_violation_exists_under_some_schedule(self):
        violated = False
        for seed in range(1, 30):
            handle = build_system(
                "naive-snow", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=seed), seed=seed
            )
            run_simple_workload(handle, rounds=2)
            if not handle.serializability().ok:
                violated = True
                break
        assert violated, "the naive candidate should produce a fractured read under some schedule"

    def test_simple_rw_alias(self):
        protocol = SimpleReadWrite()
        assert protocol.name == "simple-rw"
        assert isinstance(protocol, NaiveSnowCandidate)


class TestLockingBaseline:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_strictly_serializable_under_contention(self, seed):
        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        handle = build_system(
            "s2pl", num_readers=2, num_writers=2, num_objects=3, scheduler=scheduler, seed=seed
        )
        run_simple_workload(handle, rounds=3)
        assert handle.serializability().ok

    def test_writes_and_reads_all_complete(self):
        handle = build_system("s2pl", num_readers=2, num_writers=3, scheduler=RandomScheduler(seed=7))
        read_ids, write_ids = run_simple_workload(handle, rounds=3)
        records = {r.txn_id: r for r in handle.transaction_records()}
        assert all(records[t].complete for t in read_ids + write_ids)

    def test_blocking_detected_under_contention(self):
        """At least one schedule must show a read deferred behind a write lock."""
        saw_blocking = False
        for seed in range(1, 15):
            handle = build_system(
                "s2pl", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=seed), seed=seed
            )
            run_simple_workload(handle, rounds=2)
            report = handle.snow_report()
            if not report.non_blocking:
                saw_blocking = True
                break
        assert saw_blocking

    def test_reads_are_multi_round(self):
        handle = build_system("s2pl", num_readers=1, num_writers=1)
        r = handle.submit_read()
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).rounds == len(handle.objects)

    def test_metadata(self):
        protocol = LockingProtocol()
        assert protocol.claimed_read_rounds is None
        assert "S" in protocol.claimed_properties


class TestOccBaseline:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_strictly_serializable_under_contention(self, seed):
        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        handle = build_system(
            "occ-double-collect", num_readers=2, num_writers=3, num_objects=2, scheduler=scheduler, seed=seed
        )
        run_simple_workload(handle, rounds=2)
        assert handle.serializability().ok, handle.serializability().describe()

    def test_non_blocking_and_one_version(self):
        handle = build_system("occ-double-collect", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=4))
        run_simple_workload(handle, rounds=2)
        report = handle.snow_report()
        assert report.non_blocking
        assert report.one_version

    def test_quiescent_read_needs_exactly_two_collects(self):
        handle = build_system("occ-double-collect", num_readers=1, num_writers=1)
        r = handle.submit_read()
        handle.run_to_completion()
        record = handle.simulation.transaction_record(r)
        assert record.annotations.get("collects") == 2
        assert record.rounds == 2

    def test_rounds_grow_under_contention(self):
        """With concurrent writers some read needs more than the minimum two collects."""
        saw_retry = False
        for seed in range(1, 20):
            handle = build_system(
                "occ-double-collect",
                num_readers=1,
                num_writers=3,
                scheduler=RandomScheduler(seed=seed),
                seed=seed,
            )
            run_simple_workload(handle, rounds=2)
            report = handle.snow_report()
            if report.max_rounds() > 2:
                saw_retry = True
                break
        assert saw_retry

    def test_max_attempts_configurable(self):
        protocol = OccProtocol(max_attempts=5)
        handle = protocol.build(num_readers=1, num_writers=1)
        reader = handle.simulation.automaton(handle.readers[0])
        assert reader.max_attempts == 5

    def test_write_timestamps_annotated(self):
        handle = build_system("occ-double-collect", num_readers=1, num_writers=1)
        w = handle.submit_write({"ox": 1, "oy": 1})
        handle.run_to_completion()
        assert handle.simulation.transaction_record(w).annotations.get("timestamp") == 1
