"""Tests for algorithm C (SNW + one-round, up to |W| versions, MWMR, no C2C)."""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import AlgorithmC
from tests.conftest import build_system, run_simple_workload


class TestConfiguration:
    def test_supports_mwmr_without_c2c(self):
        handle = AlgorithmC().build(num_readers=2, num_writers=3, c2c=False)
        assert not handle.simulation.topology.allow_client_to_client

    def test_metadata_declares_unbounded_versions(self):
        protocol = AlgorithmC()
        assert protocol.claimed_read_rounds == 1
        assert protocol.claimed_versions is None
        assert "|W|" in protocol.describe()


class TestFunctionalBehaviour:
    def test_read_after_write(self):
        handle = build_system("algorithm-c", num_readers=1, num_writers=1)
        w = handle.submit_write({"ox": "a", "oy": "b"})
        r = handle.submit_read(after=[w])
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"ox": "a", "oy": "b"}

    def test_initial_read(self):
        handle = build_system("algorithm-c", num_readers=1, num_writers=1)
        r = handle.submit_read()
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"ox": 0, "oy": 0}

    def test_reader_picks_coordinator_named_version_not_just_latest(self):
        """Even when servers hold many versions the read returns the coordinator's choice."""
        handle = build_system("algorithm-c", num_readers=1, num_writers=2, scheduler=RandomScheduler(seed=6))
        read_ids, _ = run_simple_workload(handle, rounds=3)
        assert handle.serializability().ok

    def test_coordinator_request_combined_when_it_holds_a_read_object(self):
        handle = build_system("algorithm-c", num_readers=1, num_writers=1)
        r = handle.submit_read(objects=list(handle.objects))
        handle.run_to_completion()
        from repro.ioa import ActionKind

        coordinator = handle.servers[0]
        requests_to_coordinator = [
            a.message
            for a in handle.trace()
            if a.kind == ActionKind.SEND
            and a.message is not None
            and a.message.dst == coordinator
            and a.message.get("txn") == r
            and a.message.src in handle.readers
        ]
        # One combined message, not a separate get-tag-arr plus read-vals.
        assert len(requests_to_coordinator) == 1
        assert requests_to_coordinator[0].get("want_tags") is True

    def test_separate_tag_request_when_coordinator_not_read(self):
        handle = build_system("algorithm-c", num_readers=1, num_writers=1, num_objects=3)
        r = handle.submit_read(objects=["o2", "o3"])
        handle.run_to_completion()
        from repro.ioa import ActionKind

        coordinator = handle.servers[0]
        tag_requests = [
            a.message
            for a in handle.trace()
            if a.kind == ActionKind.SEND
            and a.message is not None
            and a.message.msg_type == "get-tag-arr"
            and a.message.get("txn") == r
        ]
        assert len(tag_requests) == 1
        assert tag_requests[0].dst == coordinator


class TestBoundedLatencyProperties:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_snw_holds(self, seed):
        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        handle = build_system(
            "algorithm-c", num_readers=2, num_writers=3, num_objects=3, scheduler=scheduler, seed=seed
        )
        run_simple_workload(handle, rounds=3)
        report = handle.snow_report()
        assert report.satisfies_snw, report.describe()

    def test_one_round_under_fifo(self):
        handle = build_system("algorithm-c", num_readers=2, num_writers=2, scheduler=FIFOScheduler())
        read_ids, _ = run_simple_workload(handle, rounds=3)
        records = {r.txn_id: r for r in handle.transaction_records()}
        assert all(records[read_id].rounds == 1 for read_id in read_ids)
        # No fallback rounds under send-order delivery (see module docstring).
        assert all(records[read_id].annotations.get("fallback_rounds", 0) == 0 for read_id in read_ids)

    def test_replies_carry_multiple_versions_under_contention(self):
        handle = build_system("algorithm-c", num_readers=1, num_writers=3, scheduler=FIFOScheduler())
        run_simple_workload(handle, rounds=3)
        report = handle.snow_report()
        assert report.max_versions() > 1
        assert not report.one_version

    def test_lemma20_holds(self):
        handle = build_system("algorithm-c", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=17))
        run_simple_workload(handle, rounds=2)
        assert handle.lemma20().ok

    @pytest.mark.parametrize("seed", range(5, 11))
    def test_strict_serializability_under_adversarial_fuzzing(self, seed):
        handle = build_system(
            "algorithm-c", num_readers=2, num_writers=3, num_objects=3, scheduler=RandomScheduler(seed=seed)
        )
        run_simple_workload(handle, rounds=3)
        assert handle.serializability().ok

    def test_fallback_round_is_annotated_when_used(self):
        """Across many random schedules, any fallback is recorded and bounded to one extra round."""
        fallbacks = 0
        for seed in range(1, 20):
            handle = build_system(
                "algorithm-c", num_readers=2, num_writers=3, scheduler=RandomScheduler(seed=seed), seed=seed
            )
            read_ids, _ = run_simple_workload(handle, rounds=2)
            records = {r.txn_id: r for r in handle.transaction_records()}
            for read_id in read_ids:
                record = records[read_id]
                extra = record.annotations.get("fallback_rounds", 0)
                assert extra in (0, 1)
                assert record.rounds <= 1 + extra
                fallbacks += extra
        # The corner case is rare but the accounting must be coherent either way.
        assert fallbacks >= 0
