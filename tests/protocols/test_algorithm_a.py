"""Tests for algorithm A (SNOW in MWSR with client-to-client communication)."""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import AlgorithmA, get_protocol
from repro.txn.transactions import ReadResult
from tests.conftest import build_system, run_simple_workload


class TestConfiguration:
    def test_requires_c2c(self):
        with pytest.raises(ValueError):
            AlgorithmA().build(num_writers=2, c2c=False)

    def test_single_reader_only(self):
        with pytest.raises(ValueError):
            AlgorithmA().build(num_readers=2, num_writers=1)

    def test_supports_many_writers_and_objects(self):
        handle = AlgorithmA().build(num_readers=1, num_writers=4, num_objects=5)
        assert len(handle.writers) == 4
        assert len(handle.servers) == 5

    def test_protocol_metadata(self):
        protocol = AlgorithmA()
        assert protocol.claimed_read_rounds == 1
        assert protocol.claimed_versions == 1
        assert "SNOW" in protocol.claimed_properties
        assert "algorithm-a" in protocol.describe()


class TestFunctionalBehaviour:
    def test_read_after_write_sees_written_values(self):
        handle = build_system("algorithm-a", num_writers=1)
        w = handle.submit_write({"ox": "a", "oy": "b"})
        r = handle.submit_read(after=[w])
        handle.run_to_completion()
        result = handle.simulation.transaction_record(r).result
        assert isinstance(result, ReadResult)
        assert result.as_dict == {"ox": "a", "oy": "b"}

    def test_read_before_any_write_sees_initial_values(self):
        handle = build_system("algorithm-a", num_writers=1, initial_value=0)
        r = handle.submit_read()
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"ox": 0, "oy": 0}

    def test_partial_writes_compose(self):
        handle = build_system("algorithm-a", num_writers=2)
        w1 = handle.submit_write({"ox": "only-x"}, writer="w1")
        w2 = handle.submit_write({"oy": "only-y"}, writer="w2", after=[w1])
        r = handle.submit_read(after=[w2])
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"ox": "only-x", "oy": "only-y"}

    def test_subset_read(self):
        handle = build_system("algorithm-a", num_writers=1)
        w = handle.submit_write({"ox": 1, "oy": 2})
        r = handle.submit_read(objects=["oy"], after=[w])
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"oy": 2}

    def test_sequential_reads_never_go_backwards(self):
        handle = build_system("algorithm-a", num_writers=2, scheduler=RandomScheduler(seed=5))
        read_ids, _ = run_simple_workload(handle, rounds=3)
        history = handle.history()
        assert handle.serializability().ok

    def test_info_reader_tags_increase_monotonically(self):
        handle = build_system("algorithm-a", num_writers=2)
        w1 = handle.submit_write({"ox": 1, "oy": 1}, writer="w1")
        w2 = handle.submit_write({"ox": 2, "oy": 2}, writer="w2", after=[w1])
        handle.run_to_completion()
        tags = handle.tags()
        assert tags[w2] > tags[w1] >= 2


class TestSnowProperties:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_all_snow_properties_hold_under_random_schedules(self, seed):
        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        handle = build_system("algorithm-a", num_writers=3, num_objects=3, scheduler=scheduler, seed=seed)
        run_simple_workload(handle, rounds=3)
        report = handle.snow_report()
        assert report.satisfies_snow, report.describe()

    def test_reads_are_one_round_even_with_concurrent_writes(self):
        handle = build_system("algorithm-a", num_writers=3, scheduler=RandomScheduler(seed=9))
        run_simple_workload(handle, rounds=3)
        report = handle.snow_report()
        assert report.max_rounds() == 1
        assert report.max_versions() == 1

    def test_lemma20_holds(self):
        handle = build_system("algorithm-a", num_writers=2, scheduler=RandomScheduler(seed=2))
        run_simple_workload(handle, rounds=2)
        assert handle.lemma20().ok

    def test_writes_always_complete(self):
        handle = build_system("algorithm-a", num_writers=3, scheduler=RandomScheduler(seed=13))
        _, write_ids = run_simple_workload(handle, rounds=2)
        records = {r.txn_id: r for r in handle.transaction_records()}
        assert all(records[w].complete for w in write_ids)


class TestMessageDiscipline:
    def test_all_protocol_messages_carry_txn_ids(self):
        handle = build_system("algorithm-a", num_writers=1)
        run_simple_workload(handle, rounds=1)
        for action in handle.trace():
            if action.message is not None and action.message.msg_type != "start":
                assert action.message.get("txn") is not None

    def test_writer_contacts_reader_directly(self):
        """The info-reader phase is client-to-client communication."""
        handle = build_system("algorithm-a", num_writers=1)
        run_simple_workload(handle, rounds=1)
        c2c_messages = [
            a.message
            for a in handle.trace()
            if a.message is not None
            and a.message.msg_type == "info-reader"
            and a.message.src in handle.writers
            and a.message.dst in handle.readers
        ]
        assert c2c_messages

    def test_reader_to_writer_traffic_is_only_info_acks(self):
        handle = build_system("algorithm-a", num_writers=2)
        run_simple_workload(handle, rounds=2)
        for action in handle.trace():
            message = action.message
            if message is not None and message.src in handle.readers and message.dst in handle.writers:
                assert message.msg_type == "ack-info"
