"""Tests for the Eiger-style protocol (bounded latency, not strictly serializable)."""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import EigerProtocol, EigerServer, EigerVersion
from tests.conftest import build_system, run_simple_workload


class TestEigerVersion:
    def test_latest_version_valid_from_write_ts(self):
        version = EigerVersion(value="a", write_ts=3)
        assert not version.valid_at(2)
        assert version.valid_at(3)
        assert version.valid_at(100)

    def test_overwritten_version_interval(self):
        version = EigerVersion(value="a", write_ts=3, valid_until=7)
        assert version.valid_at(3)
        assert version.valid_at(6)
        assert not version.valid_at(7)


class TestEigerServer:
    def make_server(self):
        return EigerServer("sx", "ox", initial_value="init")

    def test_initial_version(self):
        server = self.make_server()
        assert server.latest().value == "init"
        assert server.clock == 0

    def test_version_at_returns_floor_version(self):
        server = self.make_server()
        assert server.version_at(0).value == "init"
        assert server.version_at(100).value == "init"

    def test_lamport_tick_monotone(self):
        server = self.make_server()
        assert server._tick(5) == 6
        assert server._tick(2) == 7


class TestFunctionalBehaviour:
    def test_read_after_write_sequential(self):
        handle = build_system("eiger", num_readers=1, num_writers=1)
        w = handle.submit_write({"ox": "a", "oy": "b"})
        r = handle.submit_read(after=[w])
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"ox": "a", "oy": "b"}

    def test_reads_bounded_to_two_rounds(self):
        for seed in range(6):
            scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
            handle = build_system("eiger", num_readers=2, num_writers=2, scheduler=scheduler, seed=seed)
            read_ids, _ = run_simple_workload(handle, rounds=2)
            records = {r.txn_id: r for r in handle.transaction_records()}
            assert all(records[read_id].rounds <= 2 for read_id in read_ids)

    def test_reads_are_non_blocking_and_one_version(self):
        handle = build_system("eiger", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=3))
        run_simple_workload(handle, rounds=2)
        report = handle.snow_report()
        assert report.non_blocking
        assert report.one_version
        assert report.writes_complete

    def test_writes_complete_under_contention(self):
        handle = build_system("eiger", num_readers=1, num_writers=3, scheduler=RandomScheduler(seed=5))
        _, write_ids = run_simple_workload(handle, rounds=3)
        records = {r.txn_id: r for r in handle.transaction_records()}
        assert all(records[w].complete for w in write_ids)

    def test_effective_time_annotation_recorded(self):
        handle = build_system("eiger", num_readers=1, num_writers=1)
        r = handle.submit_read()
        handle.run_to_completion()
        record = handle.simulation.transaction_record(r)
        assert "effective_time" in record.annotations
        assert record.annotations["eiger_rounds"] in (1, 2)


class TestNotStrictlySerializable:
    def test_figure5_anomaly_reproduced(self):
        """The dedicated Figure 5 construction violates S (full check in tests/proofs)."""
        from repro.proofs import run_figure5

        result = run_figure5()
        assert result.anomaly_reproduced
        assert not result.serializability.ok

    def test_claimed_properties_mention_refutation(self):
        assert "refuted" in EigerProtocol().claimed_properties
