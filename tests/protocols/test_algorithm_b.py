"""Tests for algorithm B (SNW + one-version, two rounds, MWMR, no C2C)."""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import AlgorithmB
from repro.txn.transactions import ReadResult
from tests.conftest import build_system, run_simple_workload


class TestConfiguration:
    def test_no_c2c_needed(self):
        handle = AlgorithmB().build(num_readers=2, num_writers=2, c2c=False)
        assert not handle.simulation.topology.allow_client_to_client

    def test_supports_mwmr(self):
        handle = AlgorithmB().build(num_readers=3, num_writers=3, num_objects=4)
        assert len(handle.readers) == 3
        assert len(handle.writers) == 3

    def test_coordinator_is_first_server(self):
        handle = AlgorithmB().build(num_readers=1, num_writers=1, num_objects=3)
        coordinator = handle.simulation.automaton(handle.servers[0])
        others = [handle.simulation.automaton(s) for s in handle.servers[1:]]
        assert coordinator.is_coordinator
        assert not any(s.is_coordinator for s in others)

    def test_metadata(self):
        protocol = AlgorithmB()
        assert protocol.claimed_read_rounds == 2
        assert protocol.claimed_versions == 1


class TestFunctionalBehaviour:
    def test_read_after_write_sees_written_values(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        w = handle.submit_write({"ox": "a", "oy": "b"})
        r = handle.submit_read(after=[w])
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"ox": "a", "oy": "b"}

    def test_initial_read(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1, initial_value="zero")
        r = handle.submit_read()
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"ox": "zero", "oy": "zero"}

    def test_two_readers_observe_consistent_prefixes(self):
        handle = build_system("algorithm-b", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=4))
        run_simple_workload(handle, rounds=3)
        assert handle.serializability().ok

    def test_writer_tags_are_coordinator_list_positions(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=2)
        w1 = handle.submit_write({"ox": 1, "oy": 1}, writer="w1")
        w2 = handle.submit_write({"ox": 2}, writer="w2", after=[w1])
        handle.run_to_completion()
        tags = handle.tags()
        assert tags[w1] == 2 and tags[w2] == 3

    def test_subset_read_of_unwritten_object(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1, num_objects=3)
        w = handle.submit_write({"o1": "x"})
        r = handle.submit_read(objects=["o2", "o3"], after=[w])
        handle.run_to_completion()
        result = handle.simulation.transaction_record(r).result
        assert result.as_dict == {"o2": 0, "o3": 0}


class TestBoundedLatencyProperties:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_snw_plus_one_version(self, seed):
        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        handle = build_system(
            "algorithm-b", num_readers=2, num_writers=3, num_objects=3, scheduler=scheduler, seed=seed
        )
        run_simple_workload(handle, rounds=3)
        report = handle.snow_report()
        assert report.satisfies_snw, report.describe()
        assert report.one_version
        assert not report.one_round  # B pays the second round

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_reads_always_exactly_two_rounds(self, seed):
        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        handle = build_system("algorithm-b", num_readers=2, num_writers=2, scheduler=scheduler, seed=seed)
        read_ids, _ = run_simple_workload(handle, rounds=2)
        records = {r.txn_id: r for r in handle.transaction_records()}
        assert all(records[read_id].rounds == 2 for read_id in read_ids)

    def test_lemma20_holds(self):
        handle = build_system("algorithm-b", num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=8))
        run_simple_workload(handle, rounds=2)
        assert handle.lemma20().ok

    def test_non_blocking_servers(self):
        handle = build_system("algorithm-b", num_readers=2, num_writers=3, scheduler=RandomScheduler(seed=21))
        run_simple_workload(handle, rounds=3)
        report = handle.snow_report()
        assert report.non_blocking


class TestCoordinatorDiscipline:
    def test_update_coor_goes_only_to_coordinator(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=2, num_objects=3)
        run_simple_workload(handle, rounds=2)
        for action in handle.trace():
            message = action.message
            if message is not None and message.msg_type in ("update-coor", "get-tag-arr"):
                assert message.dst == handle.servers[0]

    def test_read_value_requests_use_exact_keys(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        w = handle.submit_write({"ox": "v1", "oy": "v1"})
        r = handle.submit_read(after=[w])
        handle.run_to_completion()
        read_vals = [
            a.message
            for a in handle.trace()
            if a.message is not None and a.message.msg_type == "read-val" and a.message.get("txn") == r
        ]
        assert read_vals
        assert all(m.get("key") is not None for m in read_vals)
