"""Tests for the protocol registry and the shared Protocol/SystemHandle surface."""

from __future__ import annotations

import pytest

from repro.protocols import (
    Protocol,
    all_protocols,
    bounded_snw_protocols,
    get_protocol,
    protocol_names,
    register_protocol,
)
from repro.protocols.base import BuildConfig, reader_names, writer_names


class TestRegistry:
    def test_all_expected_protocols_registered(self):
        names = protocol_names()
        for expected in (
            "algorithm-a",
            "algorithm-b",
            "algorithm-c",
            "eiger",
            "naive-snow",
            "occ-double-collect",
            "s2pl",
            "simple-rw",
        ):
            assert expected in names

    def test_get_protocol_returns_fresh_instances(self):
        assert get_protocol("algorithm-a") is not get_protocol("algorithm-a")

    def test_unknown_protocol_raises_with_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_protocol("does-not-exist")
        assert "algorithm-a" in str(excinfo.value)

    def test_all_protocols_instantiates_everything(self):
        protocols = all_protocols()
        assert len(protocols) == len(protocol_names())
        assert all(isinstance(p, Protocol) for p in protocols)

    def test_bounded_snw_protocols_cover_figure_1b(self):
        names = [p.name for p in bounded_snw_protocols()]
        assert names == ["algorithm-a", "algorithm-b", "algorithm-c", "occ-double-collect"]

    def test_register_protocol_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_protocol("algorithm-a", lambda: get_protocol("algorithm-a"))

    def test_register_and_use_custom_protocol(self):
        class Custom(Protocol):
            name = "custom-test-protocol"

            def make_automata(self, config):
                return get_protocol("naive-snow").make_automata(config)

        try:
            register_protocol("custom-test-protocol", Custom)
            assert "custom-test-protocol" in protocol_names()
            handle = get_protocol("custom-test-protocol").build()
            assert handle.protocol.name == "custom-test-protocol"
        finally:
            from repro.protocols import registry

            registry._FACTORIES.pop("custom-test-protocol", None)


class TestBuildConfig:
    def test_object_and_server_naming(self):
        config = BuildConfig(num_objects=2)
        assert config.objects() == ("ox", "oy")
        assert config.servers() == ("sx", "sy")
        config3 = BuildConfig(num_objects=3)
        assert config3.servers() == ("s1", "s2", "s3")

    def test_client_naming(self):
        assert reader_names(2) == ("r1", "r2")
        assert writer_names(3) == ("w1", "w2", "w3")

    def test_validate_rejects_empty_system(self):
        protocol = get_protocol("algorithm-b")
        with pytest.raises(ValueError):
            protocol.build(num_readers=0)
        with pytest.raises(ValueError):
            protocol.build(num_objects=0)


class TestSystemHandle:
    def test_round_robin_client_selection(self):
        handle = get_protocol("algorithm-b").build(num_readers=2, num_writers=2)
        first = handle.submit_read()
        second = handle.submit_read()
        records = {r.txn_id: r for r in handle.transaction_records()}
        assert records[first].client != records[second].client

    def test_describe_lists_population(self):
        handle = get_protocol("algorithm-b").build(num_readers=2, num_writers=1, num_objects=3)
        text = handle.describe()
        assert "r2" in text and "w1" in text and "s3" in text

    def test_tags_empty_before_run(self):
        handle = get_protocol("algorithm-b").build()
        assert handle.tags() == {}

    def test_snow_report_and_serializability_available_after_run(self):
        handle = get_protocol("algorithm-b").build()
        w = handle.submit_write({"ox": 1, "oy": 1})
        handle.submit_read(after=[w])
        handle.run_to_completion()
        assert handle.snow_report().satisfies_snw
        assert handle.serializability().ok
