"""Cross-protocol conformance: every protocol's claimed guarantees hold on executions.

This is the executable version of the paper's landscape: for each protocol we
know exactly which SNOW properties it claims (and which it gives up), and we
fuzz each one over several seeds and schedules, checking the claims with the
trace-level property checkers.  A regression in any protocol or checker shows
up here first.
"""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, LIFOScheduler, RandomScheduler
from tests.conftest import build_system, run_simple_workload


# name -> (requires S, requires N, requires one-version, requires W)
CLAIMS = {
    "algorithm-a": dict(s=True, n=True, one_version=True, one_round=True, w=True),
    "algorithm-b": dict(s=True, n=True, one_version=True, one_round=False, w=True),
    "algorithm-c": dict(s=True, n=True, one_version=False, one_round=None, w=True),
    "occ-double-collect": dict(s=True, n=True, one_version=True, one_round=False, w=True),
    "s2pl": dict(s=True, n=None, one_version=True, one_round=False, w=True),
    "eiger": dict(s=None, n=True, one_version=True, one_round=None, w=True),
    "naive-snow": dict(s=None, n=True, one_version=True, one_round=True, w=True),
    "simple-rw": dict(s=None, n=True, one_version=True, one_round=True, w=True),
}


def schedulers():
    return [("fifo", FIFOScheduler()), ("lifo", LIFOScheduler()), ("random", RandomScheduler(seed=23))]


@pytest.mark.parametrize("protocol", sorted(CLAIMS))
@pytest.mark.parametrize("scheduler_name", ["fifo", "lifo", "random"])
def test_claimed_properties_hold(protocol, scheduler_name):
    scheduler = dict(schedulers())[scheduler_name]
    claims = CLAIMS[protocol]
    handle = build_system(
        protocol,
        num_readers=2,
        num_writers=2,
        num_objects=2,
        scheduler=scheduler,
        seed=31,
    )
    run_simple_workload(handle, rounds=2)
    report = handle.snow_report()

    if claims["s"] is True:
        assert report.strict_serializable, f"{protocol} must be strictly serializable: {report.describe()}"
    if claims["n"] is True:
        assert report.non_blocking, f"{protocol} must be non-blocking: {report.describe()}"
    if claims["one_version"] is True:
        assert report.one_version, f"{protocol} must return one version per reply"
    if claims["one_version"] is False:
        # not required to violate it on every run, but the protocol may
        pass
    if claims["one_round"] is True:
        assert report.one_round, f"{protocol} must finish reads in one round"
    if claims["one_round"] is False:
        assert not report.one_round, f"{protocol} is expected to need more than one round"
    if claims["w"] is True:
        assert report.writes_complete, f"{protocol} writes must complete"


@pytest.mark.parametrize("protocol", sorted(CLAIMS))
def test_every_protocol_completes_all_transactions(protocol):
    handle = build_system(protocol, num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=41), seed=41)
    read_ids, write_ids = run_simple_workload(handle, rounds=2)
    records = {r.txn_id: r for r in handle.transaction_records()}
    assert all(records[t].complete for t in read_ids + write_ids)


@pytest.mark.parametrize("protocol", sorted(CLAIMS))
def test_every_protocol_trace_is_channel_consistent(protocol):
    handle = build_system(protocol, num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=43), seed=43)
    run_simple_workload(handle, rounds=2)
    handle.trace().validate_channels()


@pytest.mark.parametrize("protocol", sorted(CLAIMS))
def test_every_protocol_is_deterministic_per_seed(protocol):
    def run_once():
        handle = build_system(protocol, num_readers=2, num_writers=2, scheduler=RandomScheduler(seed=47), seed=47)
        read_ids, _ = run_simple_workload(handle, rounds=2)
        records = {r.txn_id: r for r in handle.transaction_records()}
        # Transaction ids are globally unique across runs, so compare only the
        # per-read results (in submission order) and the per-read round counts.
        return [
            (tuple(sorted(records[read_id].result.as_dict.items())), records[read_id].rounds)
            for read_id in read_ids
        ]

    assert run_once() == run_once()


@pytest.mark.parametrize(
    "protocol", ["algorithm-a", "algorithm-b", "algorithm-c", "occ-double-collect", "s2pl"]
)
@pytest.mark.parametrize("seed", [101, 202, 303])
def test_strong_protocols_never_violate_s_under_fuzzing(protocol, seed):
    handle = build_system(
        protocol, num_readers=2, num_writers=3, num_objects=3, scheduler=RandomScheduler(seed=seed), seed=seed
    )
    run_simple_workload(handle, rounds=3)
    assert handle.serializability().ok
