"""Scaling and shape tests: more shards, partial transactions, larger populations.

The paper's model is usually presented with two servers; the algorithms are
defined for ``k`` servers and arbitrary read/write subsets.  These tests make
sure the implementations honour that generality and that the guarantees do not
silently depend on the two-object special case.
"""

from __future__ import annotations

import pytest

from repro.ioa import RandomScheduler
from repro.protocols import get_protocol
from tests.conftest import build_system


def partial_workload(handle, seed_values):
    """Writes touching different object subsets, reads over various subsets."""
    objects = list(handle.objects)
    write_ids = []
    for index, writer in enumerate(handle.writers):
        subset = objects[index % len(objects) :][:2] or objects[:1]
        write_ids.append(
            handle.submit_write({obj: f"{writer}-{seed_values}-{obj}" for obj in subset}, writer=writer)
        )
    read_ids = []
    for index, reader in enumerate(handle.readers):
        subset = objects[: 1 + (index % len(objects))]
        read_ids.append(handle.submit_read(subset, reader=reader))
    read_ids.append(handle.submit_read(objects, reader=handle.readers[0], after=write_ids))
    handle.run_to_completion()
    return read_ids, write_ids


class TestManyShards:
    @pytest.mark.parametrize("protocol", ["algorithm-a", "algorithm-b", "algorithm-c", "occ-double-collect"])
    def test_five_shards_strict_serializability(self, protocol):
        handle = build_system(
            protocol,
            num_readers=2,
            num_writers=3,
            num_objects=5,
            scheduler=RandomScheduler(seed=61),
            seed=61,
        )
        partial_workload(handle, "a")
        assert handle.serializability().ok

    @pytest.mark.parametrize("protocol", ["algorithm-a", "algorithm-b", "algorithm-c"])
    def test_five_shards_snw(self, protocol):
        handle = build_system(
            protocol,
            num_readers=2,
            num_writers=2,
            num_objects=5,
            scheduler=RandomScheduler(seed=67),
            seed=67,
        )
        partial_workload(handle, "b")
        report = handle.snow_report()
        assert report.satisfies_snw, report.describe()

    def test_single_object_system(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1, num_objects=1)
        w = handle.submit_write({"o1": "only"})
        r = handle.submit_read(["o1"], after=[w])
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"o1": "only"}

    def test_algorithm_a_read_last_completed_version_per_object(self):
        handle = build_system("algorithm-a", num_writers=3, num_objects=4)
        w1 = handle.submit_write({"o1": 1, "o2": 1}, writer="w1")
        w2 = handle.submit_write({"o2": 2, "o3": 2}, writer="w2", after=[w1])
        w3 = handle.submit_write({"o4": 3}, writer="w3", after=[w2])
        r = handle.submit_read(["o1", "o2", "o3", "o4"], after=[w3])
        handle.run_to_completion()
        assert handle.simulation.transaction_record(r).result.as_dict == {"o1": 1, "o2": 2, "o3": 2, "o4": 3}


class TestLargerPopulations:
    @pytest.mark.parametrize("protocol", ["algorithm-b", "algorithm-c"])
    def test_four_readers_four_writers(self, protocol):
        handle = build_system(
            protocol,
            num_readers=4,
            num_writers=4,
            num_objects=3,
            scheduler=RandomScheduler(seed=71),
            seed=71,
        )
        for writer in handle.writers:
            handle.submit_write({obj: f"{writer}-v" for obj in handle.objects}, writer=writer)
        for reader in handle.readers:
            handle.submit_read(handle.objects, reader=reader)
        handle.run_to_completion()
        report = handle.snow_report()
        assert report.satisfies_snw, report.describe()

    def test_algorithm_a_with_many_writers(self):
        handle = build_system("algorithm-a", num_writers=6, num_objects=2, scheduler=RandomScheduler(seed=73), seed=73)
        for writer in handle.writers:
            handle.submit_write({"ox": f"{writer}", "oy": f"{writer}"}, writer=writer)
        handle.submit_read(handle.objects)
        handle.submit_read(handle.objects)
        handle.run_to_completion()
        assert handle.snow_report().satisfies_snow

    def test_closed_loop_back_to_back_transactions(self):
        handle = build_system("algorithm-b", num_readers=1, num_writers=1)
        for sequence in range(5):
            handle.submit_write({"ox": sequence, "oy": sequence}, writer="w1")
            handle.submit_read(handle.objects, reader="r1")
        handle.run_to_completion()
        assert handle.serializability().ok
        assert len(handle.transaction_records()) == 10


class TestTopologyEnforcementPerProtocol:
    def test_algorithm_a_default_topology_allows_c2c(self):
        handle = get_protocol("algorithm-a").build(num_writers=1)
        assert handle.simulation.topology.allow_client_to_client

    @pytest.mark.parametrize("protocol", ["algorithm-b", "algorithm-c", "naive-snow", "eiger", "s2pl", "occ-double-collect"])
    def test_no_c2c_protocols_run_with_c2c_disabled(self, protocol):
        handle = get_protocol(protocol).build(num_readers=2, num_writers=2, c2c=False)
        w = handle.submit_write({"ox": 1, "oy": 1})
        handle.submit_read(after=[w])
        handle.run_to_completion()
        assert not handle.simulation.incomplete_transactions()
