"""Direct unit tests of the protocol server/reader internals.

The end-to-end tests exercise the protocols through the kernel; these tests
poke the automata directly (with a capturing fake context) so that the
per-handler logic — coordinator list management, exact-key lookups, Lamport
arithmetic, lock queues, last-writer-wins installs — has focused coverage.
"""

from __future__ import annotations

import pytest

from repro.ioa.actions import Message
from repro.ioa.errors import SimulationError
from repro.protocols.algorithm_a import AlgorithmAReader, AlgorithmAServer
from repro.protocols.blocking import LockingServer
from repro.protocols.coordinated import CoordinatedServer, coordinator_name
from repro.protocols.eiger import EigerServer
from repro.protocols.occ import OccServer
from repro.txn.objects import Key


class FakeContext:
    """Captures outgoing sends instead of going through the kernel."""

    def __init__(self, actor: str = "server"):
        self.actor = actor
        self.sent = []

    def send(self, dst, msg_type, payload=None, phase=""):
        message = Message.make(msg_type, self.actor, dst, payload or {})
        self.sent.append(message)
        return message

    def internal(self, **info):
        pass

    def annotate_transaction(self, txn_id, **fields):
        pass

    def last(self):
        return self.sent[-1]


def msg(msg_type, src, dst, **payload):
    return Message.make(msg_type, src, dst, payload)


class TestAlgorithmAServerUnit:
    def test_write_then_read_by_key(self):
        server = AlgorithmAServer("sx", "ox", initial_value=0)
        ctx = FakeContext("sx")
        key = Key(1, "w1")
        server.on_message(msg("write-val", "w1", "sx", txn="W1", key=key, value="v1"), ctx)
        assert ctx.last().msg_type == "ack-write"
        server.on_message(msg("read-val", "r1", "sx", txn="R1", key=key), ctx)
        reply = ctx.last()
        assert reply.msg_type == "read-val-reply"
        assert reply.get("value") == "v1"
        assert reply.get("num_versions") == 1

    def test_read_of_initial_key(self):
        server = AlgorithmAServer("sx", "ox", initial_value="zero")
        ctx = FakeContext("sx")
        server.on_message(msg("read-val", "r1", "sx", txn="R1", key=Key.initial()), ctx)
        assert ctx.last().get("value") == "zero"

    def test_read_of_unknown_key_is_a_protocol_error(self):
        server = AlgorithmAServer("sx", "ox")
        with pytest.raises(SimulationError):
            server.on_message(msg("read-val", "r1", "sx", txn="R1", key=Key(9, "w9")), FakeContext("sx"))


class TestAlgorithmAReaderUnit:
    def test_latest_index_tracks_per_object_updates(self):
        reader = AlgorithmAReader("r1", ("ox", "oy"))
        ctx = FakeContext("r1")
        assert reader.latest_index_for("ox") == 1  # the initial all-ones entry
        reader.on_message(msg("info-reader", "w1", "r1", txn="W1", key=Key(1, "w1"), bits=(("ox", 1), ("oy", 0))), ctx)
        assert ctx.last().msg_type == "ack-info"
        assert ctx.last().get("tag") == 2
        assert reader.latest_index_for("ox") == 2
        assert reader.latest_index_for("oy") == 1
        reader.on_message(msg("info-reader", "w2", "r1", txn="W2", key=Key(1, "w2"), bits=(("ox", 0), ("oy", 1))), ctx)
        assert reader.latest_index_for("oy") == 3
        assert ctx.last().get("tag") == 3

    def test_non_info_messages_ignored(self):
        reader = AlgorithmAReader("r1", ("ox",))
        ctx = FakeContext("r1")
        reader.on_message(msg("something-else", "w1", "r1"), ctx)
        assert ctx.sent == []


class TestCoordinatedServerUnit:
    def make_coordinator(self):
        return CoordinatedServer("s1", "o1", ("o1", "o2"), is_coordinator=True, initial_value=0)

    def test_update_coor_appends_and_tags(self):
        server = self.make_coordinator()
        ctx = FakeContext("s1")
        server.on_message(msg("update-coor", "w1", "s1", txn="W1", key=Key(1, "w1"), bits=(("o1", 1), ("o2", 1))), ctx)
        assert ctx.last().msg_type == "ack-coor"
        assert ctx.last().get("tag") == 2
        server.on_message(msg("update-coor", "w2", "s1", txn="W2", key=Key(1, "w2"), bits=(("o1", 0), ("o2", 1))), ctx)
        assert ctx.last().get("tag") == 3

    def test_tag_array_for_read_subsets(self):
        server = self.make_coordinator()
        ctx = FakeContext("s1")
        server.on_message(msg("update-coor", "w1", "s1", txn="W1", key=Key(1, "w1"), bits=(("o1", 1), ("o2", 0))), ctx)
        tag, keys = server.tag_array_for(("o1", "o2"))
        assert tag == 2
        assert keys["o1"] == Key(1, "w1")
        assert keys["o2"] == Key.initial()
        tag_only_o2, keys_only_o2 = server.tag_array_for(("o2",))
        assert tag_only_o2 == 1
        assert keys_only_o2["o2"] == Key.initial()

    def test_non_coordinator_rejects_coordinator_messages(self):
        server = CoordinatedServer("s2", "o2", ("o1", "o2"), is_coordinator=False)
        with pytest.raises(SimulationError):
            server.on_message(msg("update-coor", "w1", "s2", txn="W1", key=Key(1, "w1"), bits=()), FakeContext())
        with pytest.raises(SimulationError):
            server.on_message(msg("get-tag-arr", "r1", "s2", txn="R1", read_set=("o2",)), FakeContext())

    def test_read_vals_returns_every_version_and_optionally_tags(self):
        server = self.make_coordinator()
        ctx = FakeContext("s1")
        server.on_message(msg("write-val", "w1", "s1", txn="W1", key=Key(1, "w1"), value="a"), ctx)
        server.on_message(msg("update-coor", "w1", "s1", txn="W1", key=Key(1, "w1"), bits=(("o1", 1), ("o2", 0))), ctx)
        server.on_message(msg("read-vals", "r1", "s1", txn="R1", want_tags=True, read_set=("o1", "o2")), ctx)
        reply = ctx.last()
        assert reply.msg_type == "read-vals-reply"
        assert reply.get("num_versions") == 2
        assert reply.get("tag") == 2
        assert dict(reply.get("keys"))["o1"] == Key(1, "w1")

    def test_coordinator_name_convention(self):
        assert coordinator_name(("s1", "s2", "s3")) == "s1"
        with pytest.raises(SimulationError):
            coordinator_name(())


class TestEigerServerUnit:
    def test_write_creates_interval_and_closes_previous(self):
        server = EigerServer("sx", "ox", initial_value="init")
        ctx = FakeContext("sx")
        server.on_message(msg("eiger-write", "w1", "sx", txn="W1", value="a", ts=0), ctx)
        assert server.latest().value == "a"
        assert server.versions[0].valid_until == 1
        server.on_message(msg("eiger-write", "w1", "sx", txn="W2", value="b", ts=5), ctx)
        assert server.latest().write_ts == 6
        assert server.versions[1].valid_until == 6

    def test_read_reply_carries_interval(self):
        server = EigerServer("sx", "ox")
        ctx = FakeContext("sx")
        server.on_message(msg("eiger-write", "w1", "sx", txn="W1", value="a", ts=0), ctx)
        server.on_message(msg("eiger-read", "r1", "sx", txn="R1", ts=0), ctx)
        reply = ctx.last()
        assert reply.get("evt") == 1
        assert reply.get("lvt") == server.clock
        assert reply.get("value") == "a"

    def test_read_at_returns_version_valid_at_effective_time(self):
        server = EigerServer("sx", "ox", initial_value="init")
        ctx = FakeContext("sx")
        server.on_message(msg("eiger-write", "w1", "sx", txn="W1", value="a", ts=0), ctx)   # ts 1
        server.on_message(msg("eiger-write", "w1", "sx", txn="W2", value="b", ts=3), ctx)   # ts 4
        server.on_message(msg("eiger-read-at", "r1", "sx", txn="R1", effective_time=2, ts=0), ctx)
        assert ctx.last().get("value") == "a"
        server.on_message(msg("eiger-read-at", "r1", "sx", txn="R2", effective_time=10, ts=0), ctx)
        assert ctx.last().get("value") == "b"


class TestLockingServerUnit:
    def test_read_granted_when_unlocked(self):
        server = LockingServer("sx", "ox", initial_value=7)
        ctx = FakeContext("sx")
        server.on_message(msg("lock-read", "r1", "sx", txn="R1"), ctx)
        assert ctx.last().msg_type == "lock-read-granted"
        assert ctx.last().get("value") == 7
        assert server.read_lock_holders == ["r1"]

    def test_write_deferred_behind_readers_and_granted_on_unlock(self):
        server = LockingServer("sx", "ox")
        ctx = FakeContext("sx")
        server.on_message(msg("lock-read", "r1", "sx", txn="R1"), ctx)
        server.on_message(msg("lock-write", "w1", "sx", txn="W1"), ctx)
        assert ctx.last().msg_type == "lock-read-granted"  # the write got no reply yet
        assert len(server.queue) == 1
        server.on_message(msg("unlock-read", "r1", "sx", txn="R1"), ctx)
        assert ctx.last().msg_type == "lock-write-granted"
        assert server.write_locked_by == "w1"

    def test_read_deferred_behind_writer_until_commit(self):
        server = LockingServer("sx", "ox")
        ctx = FakeContext("sx")
        server.on_message(msg("lock-write", "w1", "sx", txn="W1"), ctx)
        server.on_message(msg("lock-read", "r1", "sx", txn="R1"), ctx)
        assert ctx.last().msg_type == "lock-write-granted"
        server.on_message(msg("commit-write", "w1", "sx", txn="W1", key=Key(1, "w1"), value="new"), ctx)
        # After the commit the deferred read is answered with the new value.
        granted = [m for m in ctx.sent if m.msg_type == "lock-read-granted"]
        assert granted and granted[-1].get("value") == "new"

    def test_commit_without_lock_is_an_error(self):
        server = LockingServer("sx", "ox")
        with pytest.raises(SimulationError):
            server.on_message(msg("commit-write", "w1", "sx", txn="W1", key=Key(1, "w1"), value=1), FakeContext())


class TestOccServerUnit:
    def test_last_writer_wins_by_timestamp(self):
        server = OccServer("sx", "ox", is_timestamp_server=False, initial_value=0)
        ctx = FakeContext("sx")
        server.on_message(msg("install", "w1", "sx", txn="W1", value="late", timestamp=5, write_set=("ox",)), ctx)
        server.on_message(msg("install", "w2", "sx", txn="W2", value="early", timestamp=3, write_set=("ox",)), ctx)
        assert server.latest_value == "late"
        assert server.latest_timestamp == 5
        assert server.apply_counter == 2  # both installs counted

    def test_collect_reports_counter_and_write_set(self):
        server = OccServer("sx", "ox", is_timestamp_server=False)
        ctx = FakeContext("sx")
        server.on_message(msg("install", "w1", "sx", txn="W1", value="v", timestamp=1, write_set=("ox", "oy")), ctx)
        server.on_message(msg("collect", "r1", "sx", txn="R1", attempt=1), ctx)
        reply = ctx.last()
        assert reply.get("counter") == 1
        assert set(reply.get("write_set")) == {"ox", "oy"}

    def test_timestamp_oracle_monotone_and_exclusive(self):
        oracle = OccServer("s1", "o1", is_timestamp_server=True)
        ctx = FakeContext("s1")
        oracle.on_message(msg("get-ts", "w1", "s1", txn="W1"), ctx)
        oracle.on_message(msg("get-ts", "w2", "s1", txn="W2"), ctx)
        stamps = [m.get("timestamp") for m in ctx.sent]
        assert stamps == [1, 2]
        non_oracle = OccServer("s2", "o2", is_timestamp_server=False)
        with pytest.raises(SimulationError):
            non_oracle.on_message(msg("get-ts", "w1", "s2", txn="W1"), FakeContext())
