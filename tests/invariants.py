"""The shared safety-invariant checker applied to every simulation run.

Promoted out of ``tests/consensus/test_safety.py`` (PR 3) into one reusable
module so that *every* simulation-running test in ``tests/consensus``,
``tests/replication`` and ``tests/reconfig`` gets the same trace/state
assertions for free: the test helpers register each finished handle with
:func:`register`, and an autouse fixture in those suites' conftests calls
:func:`check_registered` at teardown.

Invariants checked (each skipped automatically when the run has nothing it
applies to):

* **election safety** — at most one leader is elected per term;
* **log matching** — two members' logs agree below any index where their
  terms agree, and committed prefixes agree outright;
* **state-machine safety** — applied request sequences are prefix-consistent
  across members;
* **quorum intersection across epochs** *(new)* — for every joint
  configuration a run entered, every read quorum of ``C_old,new`` intersects
  every write quorum of ``C_old`` and of ``C_new`` (checked exhaustively
  over minimal quorum subsets);
* **at-most-one-config-in-flight** *(new)* — the directory's transition log
  alternates ``joint-begin`` / ``commit`` strictly: no second change starts
  before the previous one commits;
* **lease safety** *(new)* — no local read outside a proven lease window,
  no overlap between different members' announced windows, and no election
  completing inside a live foreign window (delegates to the streaming
  :class:`~repro.obs.monitor.LeaseSafetyMonitor` replayed post-mortem —
  online/offline parity by construction).
"""

from __future__ import annotations

from typing import List

from repro.obs.monitor import (  # shared with the online monitors
    joint_quorums_intersect,
    offline_lease_violations,
)

__all__ = [
    "REGISTERED",
    "register",
    "reset",
    "check_registered",
    "check_all",
    "joint_quorums_intersect",
    "offline_lease_violations",
]

#: handles registered by the suite helpers since the last fixture reset
REGISTERED: List[object] = []


def register(handle):
    """Record a finished system handle for end-of-test invariant checking."""
    REGISTERED.append(handle)
    return handle


def reset():
    REGISTERED.clear()


def check_registered():
    """Run :func:`check_all` over every handle registered during the test.

    Handles are cleared only after every check passed: on a violation they
    stay registered, so the failing-trace dump hook (``tests/conftest.py``)
    can attach the offending schedules to the test report.  The next test's
    ``reset()`` clears them regardless.
    """
    for handle in REGISTERED:
        check_all(handle)
    REGISTERED.clear()


def check_all(handle):
    """Every applicable invariant for one finished run."""
    if consensus_members(handle):
        check_election_safety(handle)
        check_log_matching(handle)
        check_state_machine_safety(handle)
        check_lease_safety(handle)
    directory = getattr(handle, "directory", None)
    if directory is not None:
        check_quorum_intersection_across_epochs(directory)
        check_at_most_one_config_in_flight(directory)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def consensus_members(handle):
    """The live ReplicatedCoordinator automata of a finished run."""
    return [
        handle.simulation.automaton(name)
        for name in handle.simulation.topology.consensus_group()
    ]


def consensus_internals(handle):
    """All consensus-tagged internal actions of a finished run, as dicts."""
    return [
        dict(action.info)
        for action in handle.trace()
        if action.info and "consensus" in dict(action.info)
    ]


# ----------------------------------------------------------------------
# The PR 3 consensus invariants
# ----------------------------------------------------------------------
def check_election_safety(handle):
    """At most one leader is elected per term."""
    leaders_per_term = {}
    for info in consensus_internals(handle):
        if info["consensus"] == "became-leader":
            leaders_per_term.setdefault(info["term"], set()).add(info["member"])
    for term, leaders in leaders_per_term.items():
        assert len(leaders) <= 1, f"term {term} elected {sorted(leaders)}"


def check_log_matching(handle):
    """Same (index, term) => identical entry and identical prefix; committed
    prefixes agree outright.

    Compaction-aware (PR 9): indices are global, so only the overlap both
    members still retain (above either snapshot) is compared entry-by-entry —
    the compacted prefix was committed+applied, which state-machine safety
    and the snapshot verdict checks cover.
    """
    members = consensus_members(handle)
    for a in members:
        for b in members:
            if a.name >= b.name:
                continue
            floor = max(a.log.snapshot_index, b.log.snapshot_index)
            upto = min(a.log.last_index, b.log.last_index)
            for index in range(upto, floor, -1):
                if a.log.term_at(index) == b.log.term_at(index):
                    for i in range(floor + 1, index + 1):
                        assert a.log.entry(i) == b.log.entry(i), (
                            f"{a.name} and {b.name} diverge at index {i} below "
                            f"matching index {index}"
                        )
                    break
            committed = min(a.log.commit_index, b.log.commit_index)
            for i in range(floor + 1, committed + 1):
                assert a.log.entry(i) == b.log.entry(i), (
                    f"{a.name} and {b.name} disagree on committed index {i}"
                )


def check_lease_safety(handle):
    """No local read outside a proven lease window, no overlapping windows,
    no leadership assumed inside a live foreign window.

    Delegates to :func:`repro.obs.monitor.offline_lease_violations`, which
    replays the trace through a fresh :class:`LeaseSafetyMonitor` — the
    post-mortem checker and the streaming monitor agree by construction.
    A lease-free run has no lease-tagged actions and passes vacuously.
    """
    violations = offline_lease_violations(handle.trace())
    assert not violations, "lease safety violated: " + "; ".join(
        f"[{index}] {detail}" for index, detail in violations
    )


def check_state_machine_safety(handle):
    """Applied request sequences are prefix-consistent across members.

    Compared per global index over the overlap both members applied *and*
    still retain; a compacted prefix is covered by the snapshot it was
    discarded behind.
    """
    members = consensus_members(handle)
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            floor = max(a.log.snapshot_index, b.log.snapshot_index)
            upto = min(a.log.last_applied, b.log.last_applied)
            for index in range(floor + 1, upto + 1):
                assert a.log.entry(index).request_id == b.log.entry(index).request_id, (
                    f"{a.name} and {b.name} applied divergent requests at index {index}"
                )


# ----------------------------------------------------------------------
# The reconfiguration invariants (new in this PR)
# ----------------------------------------------------------------------
# ``joint_quorums_intersect`` now lives in :mod:`repro.obs.monitor` (one
# implementation shared by this post-mortem checker and the streaming
# QuorumIntersectionMonitor — online/offline parity by construction) and is
# re-exported above for the suites that import it from here.
def check_quorum_intersection_across_epochs(directory):
    """Every joint configuration the run entered kept quorum intersection
    with both of its epochs."""
    for transition in directory.transitions:
        if transition["kind"] != "joint-begin":
            continue
        old, new = transition["old"], transition["new"]
        assert joint_quorums_intersect(old, new, directory.policy), (
            f"joint config {old} -> {new} (epoch {transition['epoch']}) has a "
            f"read quorum missing a write quorum under {directory.policy.describe()}"
        )


def check_at_most_one_config_in_flight(directory):
    """joint-begin / commit must strictly alternate in the transition log,
    and a finished run must not leave a change half-done unless transactions
    are also stuck (a fault regime may legally strand the driver)."""
    in_flight = False
    for transition in directory.transitions:
        if transition["kind"] == "joint-begin":
            assert not in_flight, (
                f"second joint-begin at epoch {transition['epoch']} while a "
                "configuration change was still in flight"
            )
            in_flight = True
        elif transition["kind"] == "commit":
            assert in_flight, f"commit at epoch {transition['epoch']} without a joint-begin"
            in_flight = False
    assert in_flight == directory.in_flight()
