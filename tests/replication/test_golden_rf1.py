"""Golden-trace guarantee of the placement layer.

``replication_factor=1`` must be a *pure generalisation*: the signatures in
``golden_signatures.json`` were captured from the pre-placement seed kernel
(before the placement layer existed), and every registered protocol must
still reproduce them byte-for-byte — both with the default build arguments
and with the replication knobs passed explicitly.

If a legitimate protocol-level change intentionally alters traces, re-capture
the fixture and say so in the commit; silent drift here means the placement
layer leaked into the single-copy wire protocol.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import protocol_names

from tests.replication.conftest import run_fixed_workload

GOLDEN = json.loads((Path(__file__).parent / "golden_signatures.json").read_text())

CONFIGS = {
    "fifo-2obj": (lambda: FIFOScheduler(), 2),
    "random17-2obj": (lambda: RandomScheduler(seed=17), 2),
    "fifo-3obj": (lambda: FIFOScheduler(), 3),
}


def signature_hash(handle) -> str:
    return hashlib.sha256(repr(handle.trace().signature()).encode("utf-8")).hexdigest()


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("protocol", protocol_names())
def test_default_build_matches_pre_placement_seed(protocol, config_name):
    scheduler_factory, num_objects = CONFIGS[config_name]
    handle = run_fixed_workload(
        protocol, scheduler=scheduler_factory(), num_objects=num_objects
    )
    assert signature_hash(handle) == GOLDEN[protocol][config_name], (
        f"{protocol} trace drifted from the pre-placement seed under {config_name}"
    )


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_rf1_matches_pre_placement_seed(protocol):
    """Passing replication_factor=1 / quorum explicitly changes nothing."""
    for quorum in ("read-one-write-all", "majority"):
        handle = run_fixed_workload(
            protocol,
            scheduler=FIFOScheduler(),
            num_objects=2,
            replication_factor=1,
            quorum=quorum,
        )
        assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], (protocol, quorum)


def test_every_registered_protocol_is_pinned():
    """A newly registered protocol must be added to the golden fixture."""
    assert set(GOLDEN) == set(protocol_names())


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_consensus1_matches_pre_consensus_seed(protocol):
    """Passing consensus_factor=1 explicitly changes nothing, for every
    protocol: the consensus layer's byte-identity contract (no members are
    instantiated, no timers armed, sends/awaits identical)."""
    handle = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), num_objects=2, consensus_factor=1
    )
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol


def test_consensus_factor_rejected_without_coordinator():
    """Protocols with no coordinator fail loudly instead of silently
    ignoring the knob."""
    with pytest.raises(ValueError, match="no coordinator"):
        run_fixed_workload("simple-rw", consensus_factor=3)


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_controller_off_matches_seed(protocol):
    """Passing controller=None explicitly changes nothing, for every
    protocol: the rebalancing layer's byte-identity contract — no
    controller automaton, no probes, no directory."""
    handle = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), num_objects=2, controller=None
    )
    assert handle.directory is None
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_reconfig_off_matches_seed(protocol):
    """Passing reconfig=None (and an empty plan) explicitly changes nothing,
    for every protocol: the reconfiguration layer's byte-identity contract —
    no directory, no driver, no epoch fields on any wire."""
    from repro.consensus.reconfig import ReconfigPlan

    for reconfig in (None, ReconfigPlan(name="empty")):
        handle = run_fixed_workload(
            protocol, scheduler=FIFOScheduler(), num_objects=2, reconfig=reconfig
        )
        assert handle.directory is None
        assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], (protocol, reconfig)


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_persistence_off_matches_seed(protocol):
    """Passing persistence=None explicitly changes nothing, for every
    protocol: the persistence plane's byte-identity contract — no stores
    attached, no recovery path armed, the seed's volatile members."""
    handle = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), num_objects=2, persistence=None
    )
    assert handle.persistence is None
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol


def test_enabled_persistence_is_trace_invisible_without_compaction():
    """The stronger contract (consensus runs only — persistence needs
    members): an *attached* persistence plane with compaction off leaves the
    whole trace byte-identical to the volatile run.  Checkpoints and
    recovery write stores, never the trace."""
    from repro.persist import PersistencePolicy

    def consensus_signature(persistence):
        handle = run_fixed_workload(
            "algorithm-b",
            scheduler=FIFOScheduler(),
            num_objects=2,
            consensus_factor=3,
            persistence=persistence,
        )
        return signature_hash(handle)

    assert consensus_signature(PersistencePolicy()) == consensus_signature(None)


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_leases_off_matches_seed(protocol):
    """Passing leases=None explicitly changes nothing, for every protocol:
    the lease layer's byte-identity contract — no lease state allocated, no
    lease rounds on any wire, no new trace actions."""
    handle = run_fixed_workload(protocol, scheduler=FIFOScheduler(), num_objects=2, leases=None)
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol


def test_enabled_leases_leave_the_write_path_byte_identical():
    """The stronger contract (consensus runs only — leases need members): a
    *leased* run of a write-only workload is byte-identical to the unleased
    one.  Lease rounds are triggered exclusively by read-only requests, so a
    run with no reads never starts one — leases-on changes are confined to
    the read path by construction."""
    from repro.protocols import get_protocol

    from tests import invariants

    def write_only_signature(leases):
        handle = get_protocol("algorithm-b").build(
            num_readers=2,
            num_writers=2,
            num_objects=2,
            scheduler=FIFOScheduler(),
            seed=3,
            consensus_factor=3,
            leases=leases,
        )
        w1 = handle.submit_write(
            {obj: f"v1-{obj}" for obj in handle.objects}, writer=handle.writers[0], txn_id="W1"
        )
        handle.submit_write(
            {obj: f"v2-{obj}" for obj in handle.objects},
            writer=handle.writers[-1],
            txn_id="W2",
            after=[w1],
        )
        handle.run_to_completion()
        return signature_hash(invariants.register(handle))

    assert write_only_signature(True) == write_only_signature(None)


def test_enabled_leases_confine_changes_to_the_read_path():
    """With the mixed workload, leases change *what happens to reads* — they
    bypass the log — while the committed write sequence is untouched: the
    leased log is exactly the unleased log minus its ``get-tag-arr``
    entries, and both runs return the same read values."""
    def run(leases):
        return run_fixed_workload(
            "algorithm-b",
            scheduler=FIFOScheduler(),
            num_objects=2,
            consensus_factor=3,
            leases=leases,
        )

    def committed_requests(handle):
        member = handle.simulation.automaton("coor")
        return [
            member.log.entry(i).request_id
            for i in range(member.log.snapshot_index + 1, member.log.commit_index + 1)
        ]

    on, off = run(True), run(None)
    assert committed_requests(on) == [
        rid for rid in committed_requests(off) if not rid.startswith("get-tag-arr/")
    ]
    assert any(rid.startswith("get-tag-arr/") for rid in committed_requests(off))
    assert on.history().results() == off.history().results()


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_obs_off_matches_seed(protocol):
    """Passing obs=None explicitly changes nothing, for every protocol: the
    observability plane's byte-identity contract — no observer installed,
    no mailbox hooks, no profiler."""
    handle = run_fixed_workload(protocol, scheduler=FIFOScheduler(), num_objects=2, obs=None)
    assert handle.simulation.obs is None
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol


@pytest.mark.parametrize("protocol", protocol_names())
def test_enabled_obs_is_trace_invisible(protocol):
    """The stronger contract: even an *enabled* plane (with the wall-clock
    profiler on) leaves the trace byte-identical to the seed — the plane
    only listens, it never appends actions or perturbs the scheduler."""
    from repro.obs import ObservabilityPlane

    plane = ObservabilityPlane(profile=True)
    handle = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), num_objects=2, obs=plane
    )
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol
    # ... and it actually observed the run.
    assert plane.registry.counter_total("kernel.events") == len(handle.trace())


@pytest.mark.parametrize("protocol", protocol_names())
def test_explicit_full_trace_mode_matches_seed(protocol):
    """Passing trace_mode=TraceMode.full() explicitly changes nothing, for
    every protocol: full retention is the seed behaviour, knob or no knob."""
    from repro.ioa import TraceMode

    handle = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), num_objects=2, trace_mode=TraceMode.full()
    )
    assert handle.simulation.trace.is_full()
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol


@pytest.mark.parametrize("protocol", protocol_names())
def test_monitors_and_health_are_trace_invisible(protocol):
    """The streaming invariant monitors and the health/SLO plane extend the
    enabled-plane contract: both attached, the trace stays byte-identical to
    the seed — they listen, they never act."""
    from repro.obs import ObservabilityPlane

    plane = ObservabilityPlane(monitors=True, health=True)
    handle = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), num_objects=2, obs=plane
    )
    assert signature_hash(handle) == GOLDEN[protocol]["fifo-2obj"], protocol
    # ... and both actually watched every appended action.
    assert plane.monitors.ok
    assert plane.health_view.report()["totals"]["events"] == len(handle.trace())


def test_every_protocol_supports_reconfig():
    """The universal-reconfiguration contract: every registered protocol's
    rounds are epoch-aware and every one can spawn dynamic replicas."""
    from repro.protocols import Protocol, get_protocol

    for name in protocol_names():
        protocol = get_protocol(name)
        assert protocol.supports_reconfig, name
        assert type(protocol).make_replica is not Protocol.make_replica, name


def test_reconfig_rejected_without_support():
    """A protocol whose rounds are not epoch-aware fails loudly instead of
    silently ignoring a reconfiguration plan (every in-tree protocol now
    opts in, so the guard is pinned with a minimal stub)."""
    from repro.consensus.reconfig import ReconfigPlan, set_replica_group
    from repro.protocols import NaiveSnowCandidate

    class FixedMembershipStub(NaiveSnowCandidate):
        name = "fixed-membership-stub"
        supports_reconfig = False

    plan = ReconfigPlan(requests=(set_replica_group("ox", ("sx", "sx.2"), at=5),))
    with pytest.raises(ValueError, match="does not support membership reconfiguration"):
        FixedMembershipStub().build(
            num_readers=2, num_writers=2, num_objects=2, reconfig=plan
        )
