"""Read-repair on quorum reads: stale replicas get the freshest version back.

When an exact-key quorum read collects a ``read-val-miss`` (a replica that
never installed — or forgot — the version the metadata layer named), the
round ends by writing that version back to the stale replica.  This restores
durability after crash-with-amnesia: the formerly blank replica holds the
named version again, so even a later ``read-one-write-all`` read served by it
finds the data (the ROADMAP's read-repair item).
"""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler
from repro.ioa.actions import ActionKind
from repro.protocols import get_protocol
from repro.txn.objects import Key


def build(protocol="algorithm-b", replication_factor=3):
    handle = get_protocol(protocol).build(
        num_readers=1,
        num_writers=1,
        num_objects=2,
        scheduler=FIFOScheduler(),
        seed=0,
        replication_factor=replication_factor,
        quorum="majority" if replication_factor > 1 else "read-one-write-all",
    )
    return handle


def repair_sends(handle):
    return [
        action.message
        for action in handle.trace()
        if action.kind == ActionKind.SEND
        and action.message is not None
        and action.message.get("repair")
    ]


@pytest.mark.parametrize("protocol", ["algorithm-a", "algorithm-b"])
def test_amnesiac_replica_is_repaired_by_the_next_quorum_read(protocol):
    handle = build(protocol)
    w1 = handle.submit_write({"ox": "v1-ox", "oy": "v1-oy"}, txn_id="W1")
    handle.run()  # W1 installs at every replica

    amnesiac = handle.simulation.automaton("sx.2")
    amnesiac.forget()  # crash-with-amnesia, surgically
    key = Key(1, "w1")
    assert amnesiac.store.get(key) is None

    handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
    handle.run()

    # The read completed correctly off the surviving quorum...
    r1 = handle.simulation.transaction_record("R1")
    assert dict(r1.result.values) == {"ox": "v1-ox", "oy": "v1-oy"}

    # ...and wrote the named version back to the blank replica.
    repaired = amnesiac.store.get(key)
    assert repaired is not None and repaired.value == "v1-ox"
    sends = repair_sends(handle)
    assert sends and all(m.dst == "sx.2" for m in sends)


def test_repair_restores_durability_for_subsequent_reads():
    """After the repair, the once-blank replica serves the version itself."""
    handle = build()
    w1 = handle.submit_write({"ox": "v1-ox", "oy": "v1-oy"}, txn_id="W1")
    handle.run()
    handle.simulation.automaton("sx.2").forget()
    r1 = handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
    handle.run()
    # A second read collects only hits: no replica is stale any more.
    handle.submit_read(("ox", "oy"), txn_id="R2", after=[r1])
    handle.run()
    assert len(repair_sends(handle)) == 1  # R1 repaired; R2 found nothing stale
    r2 = handle.simulation.transaction_record("R2")
    assert dict(r2.result.values) == {"ox": "v1-ox", "oy": "v1-oy"}


def test_repair_installs_are_not_acknowledged():
    """Repairs are fire-and-forget: the reader gets no stray write acks."""
    handle = build()
    w1 = handle.submit_write({"ox": "v1-ox", "oy": "v1-oy"}, txn_id="W1")
    handle.run()
    handle.simulation.automaton("sx.2").forget()
    handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
    handle.run()
    acks_to_reader = [
        a.message
        for a in handle.trace()
        if a.kind == ActionKind.SEND
        and a.message is not None
        and a.message.msg_type == "ack-write"
        and a.message.dst == "r1"
    ]
    assert acks_to_reader == []


def test_repair_is_invisible_to_the_snow_checkers():
    """A repairing read keeps its N verdict and round-trip counts: the
    repair send is maintenance traffic, not a protocol round trip awaiting
    a reply — so the repairing run's per-read report matches the report of
    the identical run where nothing was stale."""

    def r1_report(forget: bool):
        handle = build()
        w1 = handle.submit_write({"ox": "v1-ox", "oy": "v1-oy"}, txn_id="W1")
        handle.run()
        if forget:
            handle.simulation.automaton("sx.2").forget()
        handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
        handle.run()
        report = next(
            r for r in handle.snow_report().read_reports if r.txn_id == "R1"
        )
        return handle, report

    repaired_handle, repaired = r1_report(forget=True)
    _, clean = r1_report(forget=False)
    assert repair_sends(repaired_handle)  # the repair actually happened...
    # ...yet R1 is still non-blocking and its trip counts are the clean run's.
    assert repaired.non_blocking and repaired.blocking_servers == ()
    assert repaired.round_trips_per_server == clean.round_trips_per_server
    assert repaired.one_round == clean.one_round


def test_no_repair_traffic_at_rf1():
    """Single-copy groups can never miss, so rf=1 traces stay untouched."""
    handle = build(replication_factor=1)
    w1 = handle.submit_write({"ox": "v1-ox", "oy": "v1-oy"}, txn_id="W1")
    handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
    handle.run()
    assert repair_sends(handle) == []
