"""Crash-with-amnesia: ``preserve_state=False`` on server-crash plan entries."""

from __future__ import annotations

import pytest

from repro.faults import ChaosScheduler, FaultInjector, FaultPlan, crash_amnesia, crash_recover
from repro.faults.plan import CrashEvent
from repro.ioa import FIFOScheduler
from repro.ioa.errors import SimulationError
from repro.protocols import get_protocol


def build_naive(plan, seed: int = 0):
    return get_protocol("naive-snow").build(
        num_readers=1,
        num_writers=1,
        num_objects=2,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=seed,
        fault_plane=FaultInjector(plan, seed=seed),
    )


def run_write_then_read(plan):
    handle = build_naive(plan)
    w1 = handle.submit_write({"ox": "v1", "oy": "v1"}, txn_id="W1")
    handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
    handle.run()
    read = handle.simulation.transaction_record("R1")
    assert read is not None and read.complete
    return handle, dict(read.result.values)


def test_default_crash_preserves_state():
    """Fail-recover with durable storage: the value survives the outage."""
    handle, values = run_write_then_read(crash_recover(server="sy", at=6, recover=12))
    assert values == {"ox": "v1", "oy": "v1"}


def test_amnesia_crash_loses_state():
    """Crash-with-amnesia: the recovered server answers with its initial value."""
    handle, values = run_write_then_read(crash_amnesia(server="sy", at=6, recover=12))
    assert values["ox"] == "v1"
    assert values["oy"] == 0  # the amnesiac replica forgot the write

    # The trace records the state loss as an internal action at recovery.
    faults = [
        dict(a.info)["fault"]
        for a in handle.trace()
        if a.actor == "sy" and a.info and "fault" in dict(a.info)
    ]
    assert faults == ["crash", "recover", "amnesia"]


def test_preserving_crash_records_no_amnesia_action():
    handle, _values = run_write_then_read(crash_recover(server="sy", at=6, recover=12))
    faults = [
        dict(a.info)["fault"]
        for a in handle.trace()
        if a.actor == "sy" and a.info and "fault" in dict(a.info)
    ]
    assert faults == ["crash", "recover"]


def test_amnesia_requires_a_forget_hook():
    """Targeting an automaton without forget() fails loudly, not silently."""
    plan = FaultPlan(
        name="bad-amnesia",
        crashes=(CrashEvent(server="r1", at=5, recover=10, preserve_state=False),),
    )
    handle = build_naive(plan)
    handle.submit_write({"ox": 1}, txn_id="W1")
    with pytest.raises(SimulationError, match="forget"):
        handle.run()


def test_later_durable_crash_does_not_replay_old_amnesia():
    """A past amnesiac outage must not wipe state at a *later* durable
    recovery: only crash windows intersecting the outage that just ended
    count."""
    plan = FaultPlan(
        name="amnesia-then-durable",
        crashes=(
            CrashEvent(server="sy", at=4, recover=8, preserve_state=False),
            CrashEvent(server="sy", at=20, recover=26),  # durable fail-recover
        ),
    )
    handle = build_naive(plan)
    # W1 lands before any crash and is forgotten by the amnesiac outage;
    # W2 lands between the outages and must SURVIVE the durable one.
    w1 = handle.submit_write({"oy": "v1"}, txn_id="W1")
    w2 = handle.submit_write({"oy": "v2"}, txn_id="W2", after=[w1])
    handle.submit_read(("oy",), txn_id="R1", after=[w2])
    handle.run()
    faults = [
        dict(a.info)["fault"]
        for a in handle.trace()
        if a.actor == "sy" and a.info and "fault" in dict(a.info)
    ]
    assert faults.count("amnesia") == 1  # only the first recovery forgets
    r1 = handle.simulation.transaction_record("R1")
    assert dict(r1.result.values)["oy"] == "v2"


def test_amnesia_is_deterministic():
    def signature(seed):
        handle, _ = run_write_then_read(crash_amnesia(server="sy", at=6, recover=12, seed=seed))
        return handle.trace().signature()

    assert signature(4) == signature(4)


def test_amnesia_on_replicated_group_is_masked_by_quorum():
    """An amnesiac replica in an rf=3 majority group does not corrupt reads:
    algorithm B's exact-key reads treat the blank replica as a miss and the
    surviving quorum still serves the named version."""
    plan = crash_amnesia(server="sx.3", at=6, recover=20)
    handle = get_protocol("algorithm-b").build(
        num_readers=1,
        num_writers=1,
        num_objects=2,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=0,
        replication_factor=3,
        quorum="majority",
        fault_plane=FaultInjector(plan, seed=0),
    )
    w1 = handle.submit_write({"ox": "v1", "oy": "v1"}, txn_id="W1")
    handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
    w2 = handle.submit_write({"ox": "v2", "oy": "v2"}, txn_id="W2", after=[w1])
    handle.submit_read(("ox", "oy"), txn_id="R2", after=[w2])
    handle.run()
    assert not handle.simulation.incomplete_transactions()
    r2 = handle.simulation.transaction_record("R2")
    assert dict(r2.result.values) == {"ox": "v2", "oy": "v2"}
    assert handle.snow_report().satisfies_s
