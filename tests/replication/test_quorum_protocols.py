"""Replicated-system behavior of every registered protocol.

Every protocol must run its workload to completion at replication factors
2 and 3 under both quorum policies, preserve its rf=1 SNOW verdict under
FIFO scheduling, and return the same read results the single-copy system
returns (replication is transparent to clients when nothing fails).
"""

from __future__ import annotations

import pytest

from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import get_protocol, protocol_names

from tests.replication.conftest import run_fixed_workload

ALL_PROTOCOLS = protocol_names()
STRONG_PROTOCOLS = ("algorithm-a", "algorithm-b", "algorithm-c", "occ-double-collect", "s2pl")


@pytest.mark.parametrize("quorum", ["read-one-write-all", "majority"])
@pytest.mark.parametrize("replication_factor", [2, 3])
@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_replicated_runs_complete(protocol, replication_factor, quorum):
    handle = run_fixed_workload(
        protocol, replication_factor=replication_factor, quorum=quorum
    )
    assert not handle.simulation.incomplete_transactions()
    expected_servers = 2 * replication_factor
    assert len(handle.servers) == expected_servers
    assert len(handle.simulation.servers()) == expected_servers


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_fifo_verdict_matches_single_copy(protocol):
    """Under FIFO, the rf=3 majority system keeps the rf=1 SNOW verdict."""
    single = run_fixed_workload(protocol, scheduler=FIFOScheduler())
    replicated = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), replication_factor=3, quorum="majority"
    )
    assert (
        replicated.snow_report().property_string()
        == single.snow_report().property_string()
    )


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_read_results_match_single_copy_under_fifo(protocol):
    single = run_fixed_workload(protocol, scheduler=FIFOScheduler())
    replicated = run_fixed_workload(
        protocol, scheduler=FIFOScheduler(), replication_factor=3, quorum="majority"
    )

    def results(handle):
        return {
            str(r.txn_id): r.result
            for r in handle.simulation.transaction_records()
        }

    assert results(single) == results(replicated)


@pytest.mark.parametrize("protocol", STRONG_PROTOCOLS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_strong_protocols_stay_serializable_replicated(protocol, seed):
    """S survives replication under randomized schedules for the S-protocols."""
    handle = run_fixed_workload(
        protocol,
        scheduler=RandomScheduler(seed=seed),
        replication_factor=3,
        quorum="majority",
        seed=seed,
    )
    assert handle.serializability().ok, handle.serializability()


@pytest.mark.parametrize("protocol", ("algorithm-a", "algorithm-b", "algorithm-c"))
def test_lemma20_tags_survive_replication(protocol):
    handle = run_fixed_workload(
        protocol, scheduler=RandomScheduler(seed=5), replication_factor=3, quorum="majority"
    )
    assert handle.lemma20().ok


def test_invalid_replication_factor_rejected():
    with pytest.raises(ValueError):
        run_fixed_workload("algorithm-b", replication_factor=0)


def test_unknown_quorum_rejected():
    with pytest.raises(KeyError):
        run_fixed_workload("algorithm-b", replication_factor=3, quorum="nope")


def test_handle_reports_placement():
    handle = run_fixed_workload("algorithm-b", replication_factor=2, quorum="majority")
    assert "replication=2" in handle.describe()
    assert handle.placement.group("ox") == ("sx", "sx.2")
    assert handle.quorum_policy.name == "majority"
    assert "sx.2" in handle.simulation.topology.describe()


def test_mixed_group_sizes_complete():
    """A placement mixing a single-copy group with a replicated one must not
    stall write-quorum accounting: single-copy acks carry no ``object`` field
    and are resolved from their sender instead."""
    from dataclasses import dataclass

    from repro.protocols.algorithm_b import AlgorithmB
    from repro.protocols.base import BuildConfig, SystemHandle
    from repro.ioa.simulation import Simulation
    from repro.ioa.network import Topology
    from repro.txn.placement import Placement

    mixed = Placement(groups=(("ox", ("sx",)), ("oy", ("sy", "sy.2", "sy.3"))))

    @dataclass
    class MixedConfig(BuildConfig):
        def placement(self) -> Placement:
            return mixed

    protocol = AlgorithmB()
    config = MixedConfig(num_readers=1, num_writers=1, num_objects=2)
    simulation = Simulation(topology=Topology(allow_client_to_client=False), scheduler=FIFOScheduler())
    simulation.add_automata(protocol.make_automata(config))
    handle = SystemHandle(protocol=protocol, simulation=simulation, config=config)

    w1 = handle.submit_write({"ox": "v1", "oy": "v1"}, txn_id="W1")
    handle.submit_read(("ox", "oy"), txn_id="R1", after=[w1])
    handle.run_to_completion()
    r1 = handle.simulation.transaction_record("R1")
    assert dict(r1.result.values) == {"ox": "v1", "oy": "v1"}


def test_quorum_replies_annotated_on_replicated_reads():
    handle = run_fixed_workload("algorithm-b", replication_factor=3, quorum="majority")
    reads = [
        r
        for r in handle.simulation.transaction_records()
        if str(r.txn_id).startswith("R")
    ]
    assert reads
    for record in reads:
        # 2 objects x majority-of-3: at least 2 replies per object.
        assert record.annotations["quorum_replies"] >= 4
