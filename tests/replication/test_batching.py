"""Batched quorum fan-out and batched consensus appends.

Two independent knobs, both **off by default** (the golden-signature suite
pins the default traces, so any leak of batching into the default path fails
there, not here):

* ``fanout_batching`` — a quorum round's parallel sends travel as one
  scheduler event (:class:`repro.ioa.SendBatch` / kernel flights), so the
  scheduler chooses once per round instead of once per replica;
* ``consensus_batching`` — a replicated-coordinator leader packs requests
  that arrive while a commit round is in flight into a single ``cns-batch``
  log entry, preserving exactly-once application per sub-request.

What this suite pins down: the knobs default off, batched runs stay
deterministic (same build + same workload ⇒ same msg-id-free trace
signature), batching actually reduces scheduler steps / log length, and
every safety verdict (SNOW, strict serializability, the shared invariant
checker via the autouse fixture) holds with the knobs on.
"""

from __future__ import annotations

import pytest

from repro.consensus.log import BATCH
from repro.ioa import FIFOScheduler, RandomScheduler
from repro.protocols import BuildConfig, get_protocol

from tests import invariants
from tests.replication.conftest import run_fixed_workload

REPLICATED = [
    "algorithm-a",
    "algorithm-b",
    "algorithm-c",
    "occ-double-collect",
    "eiger",
    "naive-snow",
]
COORDINATED = ["algorithm-b", "algorithm-c", "occ-double-collect"]


def signatures_equal(a, b) -> bool:
    return a.trace().signature() == b.trace().signature()


# ----------------------------------------------------------------------
# Knob defaults
# ----------------------------------------------------------------------
def test_batching_knobs_default_off():
    config = BuildConfig()
    assert config.fanout_batching is False
    assert config.consensus_batching is False


def test_default_build_leaves_automata_unbatched():
    handle = run_fixed_workload("algorithm-b", replication_factor=3, quorum="majority")
    for automaton in handle.simulation.automata():
        assert getattr(automaton, "batch_fanout", False) is False
        assert getattr(automaton, "append_batching", False) is False


def test_consensus_batching_requires_a_log():
    with pytest.raises(ValueError, match="consensus_factor"):
        get_protocol("algorithm-b").build(consensus_factor=1, consensus_batching=True)


# ----------------------------------------------------------------------
# Batched quorum fan-out
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", REPLICATED)
def test_fanout_batching_is_deterministic(protocol):
    runs = [
        run_fixed_workload(
            protocol, replication_factor=3, quorum="majority", fanout_batching=True
        )
        for _ in range(2)
    ]
    assert signatures_equal(*runs)


@pytest.mark.parametrize("protocol", REPLICATED)
def test_fanout_batching_reduces_scheduler_steps(protocol):
    plain = run_fixed_workload(protocol, replication_factor=3, quorum="majority")
    batched = run_fixed_workload(
        protocol, replication_factor=3, quorum="majority", fanout_batching=True
    )
    assert batched.simulation.steps_taken < plain.simulation.steps_taken


@pytest.mark.parametrize("protocol", REPLICATED)
def test_fanout_batching_preserves_verdicts(protocol):
    handle = run_fixed_workload(
        protocol, replication_factor=3, quorum="majority", fanout_batching=True
    )
    assert handle.serializability().ok
    assert handle.snow_report().non_blocking
    # every transaction of the fixed workload still completes
    assert all(r.complete for r in handle.transaction_records())


def test_fanout_batching_random_schedule_verdicts():
    """Flights must not smuggle ordering past an adversarial scheduler."""
    handle = run_fixed_workload(
        "algorithm-b",
        scheduler=RandomScheduler(seed=23),
        replication_factor=3,
        quorum="majority",
        fanout_batching=True,
    )
    assert handle.serializability().ok
    assert all(r.complete for r in handle.transaction_records())


# ----------------------------------------------------------------------
# Batched consensus appends
# ----------------------------------------------------------------------
def burst_workload(protocol_name, consensus_batching, seed=3):
    """A write burst against a replicated coordinator (cf=3).

    The writes carry no dependencies, so coordinator requests pile up while
    the leader's first commit round is still in flight — exactly the window
    ``append_batching`` packs into one log entry.
    """
    handle = get_protocol(protocol_name).build(
        num_readers=2,
        num_writers=3,
        num_objects=2,
        scheduler=FIFOScheduler(),
        seed=seed,
        replication_factor=3,
        quorum="majority",
        consensus_factor=3,
        consensus_batching=consensus_batching,
    )
    for i in range(6):
        handle.submit_write(
            {obj: f"v{i}-{obj}" for obj in handle.objects},
            writer=handle.writers[i % len(handle.writers)],
            txn_id=f"W{i}",
        )
    handle.submit_read(handle.objects, reader=handle.readers[0], txn_id="R1")
    handle.submit_read(handle.objects, reader=handle.readers[1], txn_id="R2")
    handle.run_to_completion()
    return invariants.register(handle)


def member_logs(handle):
    return [handle.simulation.automaton(name).log for name in handle.consensus_group]


@pytest.mark.parametrize("protocol", COORDINATED)
def test_consensus_batching_packs_a_batch_entry(protocol):
    handle = burst_workload(protocol, consensus_batching=True)
    entries = [e for log in member_logs(handle) for e in log.entries]
    assert any(e.msg_type == BATCH for e in entries), (
        "a six-write burst at cf=3 should force at least one packed append"
    )


@pytest.mark.parametrize("protocol", COORDINATED)
def test_consensus_batching_shortens_the_log(protocol):
    plain = burst_workload(protocol, consensus_batching=False)
    batched = burst_workload(protocol, consensus_batching=True)
    assert max(log.last_index for log in member_logs(batched)) < max(
        log.last_index for log in member_logs(plain)
    )


@pytest.mark.parametrize("protocol", COORDINATED)
def test_consensus_batching_applies_exactly_once(protocol):
    handle = burst_workload(protocol, consensus_batching=True)
    assert all(r.complete for r in handle.transaction_records())
    assert handle.serializability().ok
    # No request id — batched sub-request or plain entry — commits twice.
    for log in member_logs(handle):
        seen = set()
        for entry in log.committed_entries():
            for request_id in entry.request_ids():
                assert request_id not in seen, f"{request_id} committed twice"
                seen.add(request_id)


@pytest.mark.parametrize("protocol", COORDINATED)
def test_consensus_batching_is_deterministic(protocol):
    runs = [burst_workload(protocol, consensus_batching=True) for _ in range(2)]
    assert signatures_equal(*runs)


def test_both_knobs_compose():
    handle = run_fixed_workload(
        "algorithm-b",
        replication_factor=3,
        quorum="majority",
        consensus_factor=3,
        fanout_batching=True,
        consensus_batching=True,
    )
    assert handle.serializability().ok
    assert all(r.complete for r in handle.transaction_records())
    again = run_fixed_workload(
        "algorithm-b",
        replication_factor=3,
        quorum="majority",
        consensus_factor=3,
        fanout_batching=True,
        consensus_batching=True,
    )
    assert signatures_equal(handle, again)
