"""Fault-tolerant SNOW: verdicts measured *through* a replica outage.

The acceptance experiment of the placement layer: with replication factor 3
and majority quorums, fail-stopping one replica mid-run must not cost
availability — every read and write completes on the surviving quorum — and
the SNOW / Lemma-20 verdicts must match the fault-free run.  At replication
factor 1 the same crash kills the only copy, which is what the seed's fault
experiments showed; the contrast is the point.
"""

from __future__ import annotations

import pytest

from repro.analysis import replication_grid_rows, sweep_replication_factor
from repro.faults import ChaosScheduler, FaultInjector, FaultPlan
from repro.faults.plan import CrashEvent
from repro.ioa import FIFOScheduler

from tests.replication.conftest import run_fixed_workload

QUORUM_PROTOCOLS = ("algorithm-a", "algorithm-b", "algorithm-c")


def crash_plan(server: str, at: int = 4, seed: int = 3) -> FaultPlan:
    return FaultPlan(
        name="crash-replica",
        crashes=(CrashEvent(server=server, at=at, recover=None),),
        seed=seed,
    )


def run_with_crash(protocol: str, server=None, replication_factor: int = 3):
    return run_fixed_workload(
        protocol,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        replication_factor=replication_factor,
        quorum="majority" if replication_factor > 1 else "read-one-write-all",
        plan=crash_plan(server) if server is not None else None,
        run_to_completion=False,
    )


@pytest.mark.parametrize("protocol", QUORUM_PROTOCOLS)
def test_crashed_replica_costs_nothing_at_rf3(protocol):
    baseline = run_with_crash(protocol, server=None)
    crashed = run_with_crash(protocol, server="sx.3")

    # Availability: every transaction completed despite the dead replica.
    assert not crashed.simulation.incomplete_transactions()

    # Same SNOW verdict as the fault-free run.
    assert (
        crashed.snow_report().property_string()
        == baseline.snow_report().property_string()
    )

    # Same Lemma-20 verdict (tags still form a valid serialization order).
    assert baseline.lemma20().ok and crashed.lemma20().ok

    # And the same values were read.
    def read_results(handle):
        return {
            str(r.txn_id): r.result
            for r in handle.simulation.transaction_records()
            if str(r.txn_id).startswith("R")
        }

    assert read_results(crashed) == read_results(baseline)


@pytest.mark.parametrize("protocol", QUORUM_PROTOCOLS)
def test_same_crash_kills_the_single_copy_at_rf1(protocol):
    """The contrast cell: at rf=1 the crashed server was the only copy."""
    crashed = run_fixed_workload(
        protocol,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        replication_factor=1,
        plan=crash_plan("sx"),
        run_to_completion=False,
    )
    assert crashed.simulation.incomplete_transactions()


def test_algorithm_a_survives_even_a_primary_crash():
    """Algorithm A's metadata lives at the reader, so any replica may die."""
    crashed = run_with_crash("algorithm-a", server="sx")
    assert not crashed.simulation.incomplete_transactions()
    assert crashed.snow_report().property_string() == "SNOW"


def test_replication_sweep_grid_shape_and_story():
    """The sweep emits machine-readable rf × scenario rows with the story."""
    grid = sweep_replication_factor(protocols=("algorithm-b",), factors=(1, 3))
    rows = replication_grid_rows(grid)
    cells = {(r["replication_factor"], r["scenario"]): r for r in rows}
    assert set(cells) == {(1, "none"), (1, "crash-replica"), (3, "none"), (3, "crash-replica")}
    assert cells[(1, "crash-replica")]["availability"] < 1.0
    assert cells[(3, "crash-replica")]["availability"] == 1.0
    assert cells[(3, "crash-replica")]["snow"] == cells[(3, "none")]["snow"]
    assert cells[(3, "crash-replica")]["read_quorum"] == 2
