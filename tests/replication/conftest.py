"""Shared helpers for the placement-layer tests.

``run_fixed_workload`` mirrors ``tests/faults/conftest.py`` but threads the
replication knobs through ``Protocol.build`` — the same explicit-id workload
the golden signatures were captured with, so signatures are comparable
across runs *and* across the refactor boundary.

Every handle the helper returns is registered with the shared invariant
checker (``tests/invariants.py``); the autouse ``invariant_autocheck``
fixture re-checks the safety invariants at the end of each test, so every
simulation run in this suite passes through the checker automatically.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector
from repro.ioa import FIFOScheduler
from repro.protocols import get_protocol

from tests import invariants


@pytest.fixture(autouse=True)
def invariant_autocheck():
    """Apply the shared safety-invariant checker to every run of this suite."""
    invariants.reset()
    yield
    invariants.check_registered()


def run_fixed_workload(
    protocol_name: str,
    scheduler=None,
    seed: int = 3,
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    replication_factor: int = 1,
    quorum: str = "read-one-write-all",
    consensus_factor: int = 1,
    election_timeout=None,
    plan=None,
    reconfig=None,
    controller=None,
    obs=None,
    trace_mode=None,
    fanout_batching: bool = False,
    consensus_batching: bool = False,
    persistence=None,
    leases=None,
    run_to_completion: bool = True,
):
    """Build, submit the fixed explicit-id workload, run; returns the handle."""
    protocol = get_protocol(protocol_name)
    if not protocol.supports_multiple_readers:
        num_readers = 1
    handle = protocol.build(
        num_readers=num_readers,
        num_writers=num_writers,
        num_objects=num_objects,
        scheduler=scheduler or FIFOScheduler(),
        seed=seed,
        replication_factor=replication_factor,
        quorum=quorum,
        consensus_factor=consensus_factor,
        election_timeout=election_timeout,
        reconfig=reconfig,
        controller=controller,
        obs=obs,
        trace_mode=trace_mode,
        fanout_batching=fanout_batching,
        consensus_batching=consensus_batching,
        persistence=persistence,
        leases=leases,
        fault_plane=FaultInjector(plan, seed=seed) if plan is not None else None,
    )
    w1 = handle.submit_write(
        {obj: f"v1-{obj}" for obj in handle.objects}, writer=handle.writers[0], txn_id="W1"
    )
    handle.submit_read(handle.objects, reader=handle.readers[0], txn_id="R1")
    w2 = handle.submit_write(
        {obj: f"v2-{obj}" for obj in handle.objects}, writer=handle.writers[-1], txn_id="W2", after=[w1]
    )
    handle.submit_read(handle.objects, reader=handle.readers[-1], txn_id="R2", after=[w2])
    if run_to_completion:
        handle.run_to_completion()
    else:
        handle.run()
    return invariants.register(handle)
