"""Unit tests for the placement layer: replica maps and quorum math."""

from __future__ import annotations

import pytest

from repro.txn.placement import (
    MajorityQuorum,
    Placement,
    ReadOneWriteAll,
    quorum_policy,
    quorum_policy_names,
    replica_names,
    standard_placement,
)


class TestReplicaNames:
    def test_factor_one_keeps_canonical_names(self):
        assert replica_names("ox", 1) == ("sx",)
        assert replica_names("o3", 1) == ("s3",)

    def test_factor_three_suffixes_secondaries(self):
        assert replica_names("ox", 3) == ("sx", "sx.2", "sx.3")

    def test_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            replica_names("ox", 0)


class TestPlacement:
    def test_single_copy_matches_seed_naming(self):
        placement = standard_placement(2, replication_factor=1)
        assert placement.servers() == ("sx", "sy")
        assert placement.is_trivial()
        assert placement.replication_factor == 1
        assert placement.primary("ox") == "sx"

    def test_replicated_groups_and_lookups(self):
        placement = standard_placement(2, replication_factor=3)
        assert placement.group("oy") == ("sy", "sy.2", "sy.3")
        assert placement.servers() == ("sx", "sx.2", "sx.3", "sy", "sy.2", "sy.3")
        assert not placement.is_trivial()
        assert placement.object_of("sx.2") == "ox"
        assert placement.object_of("sy") == "oy"

    def test_object_of_unknown_server_raises(self):
        placement = standard_placement(2)
        with pytest.raises(KeyError):
            placement.object_of("nope")

    def test_duplicate_server_rejected(self):
        with pytest.raises(ValueError):
            Placement(groups=(("ox", ("s1",)), ("oy", ("s1",))))

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Placement(groups=(("ox", ()),))


class TestQuorumPolicies:
    def test_registry_names(self):
        assert "majority" in quorum_policy_names()
        assert "read-one-write-all" in quorum_policy_names()
        assert isinstance(quorum_policy("majority"), MajorityQuorum)
        assert isinstance(quorum_policy("rowa"), ReadOneWriteAll)

    def test_policy_instances_pass_through(self):
        policy = MajorityQuorum()
        assert quorum_policy(policy) is policy

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            quorum_policy("paxos-ultra")

    @pytest.mark.parametrize("n,expected_r,expected_w", [(1, 1, 1), (2, 2, 2), (3, 2, 2), (4, 3, 3), (5, 3, 3)])
    def test_majority_math(self, n, expected_r, expected_w):
        policy = MajorityQuorum()
        assert policy.read_quorum(n) == expected_r
        assert policy.write_quorum(n) == expected_w

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7])
    def test_majority_intersection_holds_for_all_sizes(self, n):
        policy = MajorityQuorum()
        policy.validate(n)  # no raise
        assert policy.read_quorum(n) + policy.write_quorum(n) > n

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_rowa_intersection_holds_for_all_sizes(self, n):
        policy = ReadOneWriteAll()
        policy.validate(n)
        assert policy.read_quorum(n) == 1
        assert policy.write_quorum(n) == n

    def test_broken_policy_is_rejected(self):
        class ReadOneWriteOne(ReadOneWriteAll):
            def write_quorum(self, n: int) -> int:
                return 1

        with pytest.raises(ValueError, match="intersection"):
            ReadOneWriteOne().validate(3)

    def test_placement_validates_policy_per_group(self):
        placement = standard_placement(2, replication_factor=3)
        placement.validate_policy(MajorityQuorum())  # no raise

        class TooSmall(MajorityQuorum):
            def read_quorum(self, n: int) -> int:
                return 1

        with pytest.raises(ValueError):
            placement.validate_policy(TooSmall())
