"""A tour of the observability plane on a chaotic reconfiguration run.

``repro.obs`` gives every simulation five coordinated views, all derived
from the same deterministic trace:

1. a **causal span tree** — one span per transaction, child spans per
   quorum round, zero-length spans for applied consensus entries, plus
   election and reconfiguration windows, stitched together with one causal
   edge per delivered message;
2. a **kernel metrics registry** — virtual-time counters, gauges and
   histograms (events by kind, messages by type and channel class, mailbox
   depth watermarks, probe RTTs) fed by cheap hooks instead of trace
   re-walks;
3. **streaming invariant monitors** — the offline safety checkers as
   online automata (election safety, log matching, quorum intersection,
   config-in-flight), alerting at the exact offending trace index;
4. a **health/SLO plane** — per-kind latency SLOs, rolling timeout/error
   rates and staleness-derived replica health, all on the virtual clock;
5. an opt-in **wall-clock profiler** of the kernel hot loop, whose numbers
   never enter any deterministic artifact.

The scenario here is PR 4's acceptance story under chaos: a replica of one
object fail-stops mid-run and a joint-consensus change replaces it — with
the plane enabled you can *watch* the crash, the joint window and the
commit on one timeline, with the monitors confirming live that no safety
rule broke along the way.  Run twice, the printed timeline, registry
snapshot and health report are byte-identical; the trace itself matches
the plane-free run.

The ``--inject-violation`` flag forges a second leader for an already-led
term into the finished run's live trace — the streaming suite fires
immediately, and the printed alert carries the offending index plus a
bounded causal suffix (the post-mortem checker would need the whole trace
to say the same thing).

Run with:  PYTHONPATH=src python examples/observability_tour.py [--export timeline.json]
"""

from __future__ import annotations

import argparse

from repro.faults import ChaosScheduler, FaultInjector, replace_dead_replica
from repro.ioa import FIFOScheduler
from repro.ioa.actions import Action, ActionKind
from repro.obs import ObservabilityPlane, derive_spans, render_timeline, write_chrome_trace
from repro.protocols import get_protocol

SEED = 3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--protocol", default="algorithm-b")
    parser.add_argument(
        "--export",
        metavar="FILE",
        help="also write the Chrome trace-event timeline (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--inject-violation",
        action="store_true",
        help="forge a duplicate leader into the live trace to demo the alert path",
    )
    args = parser.parse_args()

    plan, reconfig = replace_dead_replica()
    plane = ObservabilityPlane(profile=True, monitors=True, health=True)
    protocol = get_protocol(args.protocol)
    handle = protocol.build(
        num_readers=2 if protocol.supports_multiple_readers else 1,
        num_writers=2,
        num_objects=2,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=SEED,
        replication_factor=3,
        quorum="majority",
        reconfig=reconfig,
        obs=plane,
        fault_plane=FaultInjector(plan, seed=SEED),
    )
    previous = None
    for index in range(1, 4):
        previous = handle.submit_write(
            {obj: f"v{index}-{obj}" for obj in handle.objects},
            txn_id=f"W{index}",
            after=[previous] if previous else (),
        )
        handle.submit_read(handle.objects, txn_id=f"R{index}", after=[previous])
    handle.run()

    tree = derive_spans(handle.simulation)
    print("=== causal span timeline (clock = trace index) ===")
    print(render_timeline(tree))
    print()
    print("=== kernel metrics registry ===")
    print(plane.registry.describe())
    print()
    print("=== streaming invariant monitors (watched the run live) ===")
    print(plane.monitors.describe())
    print()
    print("=== end-of-run health/SLO report (virtual clock) ===")
    print(plane.health_view.render())
    print()
    print("=== kernel profile (wall clock — never part of results) ===")
    print(plane.profiler.report(steps=handle.simulation.steps_taken))

    if args.inject_violation:
        print()
        print("=== injecting a duplicate leader for term 999 ... ===")
        trace = handle.simulation.trace
        for member in ("demo-a", "demo-b"):
            trace.append(
                Action.make(
                    ActionKind.INTERNAL,
                    member,
                    info={"consensus": "became-leader", "term": 999, "member": member},
                )
            )
        alert = plane.monitors.alerts[-1]
        print(alert.describe())
        print(f"(flagged live at trace index {alert.trace_index}, "
              f"{trace.total_appended - 1 - alert.trace_index} events before the run would end)")

    if args.export:
        path = write_chrome_trace(tree, args.export)
        print(f"\nwrote Chrome trace-event timeline to {path} (open in ui.perfetto.dev)")


if __name__ == "__main__":
    main()
