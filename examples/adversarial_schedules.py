#!/usr/bin/env python
"""Playing the adversary: how asynchrony breaks naive READ transactions.

The impossibility results all boil down to one adversarial power: the network
may deliver a READ transaction's requests on either side of a concurrent
WRITE transaction's installs.  This example makes that concrete:

* a targeted :class:`~repro.ioa.scheduler.AdversarialScheduler` splits a
  READ of the *naive* latest-value protocol across a concurrent WRITE — the
  read returns the new value from one shard and the old value from the other,
  and the checker rejects the history;
* the *same* adversarial schedule is then applied to algorithm A, whose
  reader only ever asks for versions whose WRITE already informed it — the
  anomaly cannot be produced and all SNOW properties hold.

Run with::

    python examples/adversarial_schedules.py
"""

from __future__ import annotations

from repro.faults import fracture_rules
from repro.ioa import AdversarialScheduler
from repro.protocols import get_protocol


def run(protocol_name: str) -> None:
    protocol = get_protocol(protocol_name)
    handle = protocol.build(num_readers=1, num_writers=1, num_objects=2)
    write_id = handle.submit_write({"ox": "new", "oy": "new"}, writer="w1")
    read_id = handle.submit_read(["ox", "oy"])
    # The fracture schedule (shared with repro.faults.adversary): hold the
    # read at sx until the write landed there; hold the write at sy until
    # the read finished.
    rules = fracture_rules(read_id, write_id, late_server="sx", early_server="sy")
    handle.simulation.scheduler = AdversarialScheduler(rules=rules)
    handle.run_to_completion()

    record = handle.simulation.transaction_record(read_id)
    report = handle.snow_report()
    print(f"--- {protocol_name} under the fracture adversary ---")
    print(f"  READ returned : {record.result.describe()}")
    print(f"  properties    : {report.property_string()}")
    print(f"  serializable  : {report.serializability.describe()}")
    print()


def main() -> None:
    print("The adversary: deliver the READ's request to sx only after the WRITE installed there,")
    print("but hold the WRITE's install at sy until the READ has completed.\n")
    run("naive-snow")
    run("algorithm-a")
    print("The naive candidate returns a fractured read (new ox, old oy) — exactly the behaviour the")
    print("SNOW theorem says cannot be avoided without giving something up.  Algorithm A, which may use")
    print("client-to-client communication, never asks for a version whose WRITE has not finished telling")
    print("the reader about itself, so the same schedule cannot hurt it.")


if __name__ == "__main__":
    main()
