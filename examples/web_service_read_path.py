#!/usr/bin/env python
"""A web-service read path: compare READ-transaction designs on a read-heavy workload.

The paper's motivation (Section 1) is the read-dominated traffic of web
services — Facebook's TAO sees ~500 reads per write, Google's F1 orders of
magnitude more reads than general transactions — where user-visible latency
is dominated by cross-shard READ transactions.

This example plays a TAO-like read-heavy workload (many multi-shard READ
transactions, a few WRITE transactions) through every protocol in the
repository and prints the latency/guarantee trade-off table: who is as fast
as simple reads, who pays an extra round, who blocks, who retries, and who
silently gives up strict serializability.

Run with::

    python examples/web_service_read_path.py
"""

from __future__ import annotations

from repro.analysis import WorkloadSpec, compare_protocols, format_latency_comparison

PROTOCOLS = [
    "simple-rw",          # the latency floor (no cross-shard guarantees)
    "algorithm-a",        # SNOW (MWSR + client-to-client)
    "algorithm-b",        # SNW + one version, two rounds
    "algorithm-c",        # SNW + one round, |W| versions
    "eiger",              # bounded latency, but only logical-clock ordering
    "s2pl",               # blocking lock-based baseline
    "occ-double-collect", # retry-based baseline, unbounded rounds
]


def main() -> None:
    workload = WorkloadSpec(
        reads_per_reader=12,
        writes_per_writer=2,
        read_size=3,
        write_size=2,
        zipf_s=0.8,   # skewed object popularity, as in social-graph workloads
        seed=2024,
    )
    print("Workload:", workload.describe())
    print()

    results = compare_protocols(
        PROTOCOLS,
        workload=workload,
        num_readers=2,
        num_writers=2,
        num_objects=4,
        scheduler="random",
        seed=2024,
    )

    print(format_latency_comparison(results, title="READ-transaction designs on a read-heavy workload"))
    print()
    print("Reading the table:")
    print("  * 'props' is the SNOW verdict measured on this execution (lowercase = property violated).")
    print("  * algorithm-a matches simple-rw's single round while keeping SNOW — but needs MWSR + C2C.")
    print("  * algorithm-b/c are the paper's bounded-latency designs for the general MWMR setting:")
    print("    B pays a second round, C pays multi-version replies.")
    print("  * eiger keeps the latency but loses the S — see examples/eiger_anomaly.py.")
    print("  * s2pl blocks (loses N); occ-double-collect retries (unbounded rounds under contention).")


if __name__ == "__main__":
    main()
