#!/usr/bin/env python
"""A tour of the impossibility landscape: Figure 1(a) made executable.

Three things happen here:

1. the mechanical replays of the two impossibility proofs run — Theorem 1
   (no SNOW with two readers and a writer, even with client-to-client
   communication) and Theorem 2 (no SNOW with two clients without it) — each
   ending with a transaction history that the semantic strict-serializability
   checker rejects;
2. the same boundary is demonstrated on *running code*: the natural
   one-round/one-version/non-blocking candidate protocol is broken by an
   adversarial schedule in every impossible setting, while algorithm A passes
   every SNOW check in the possible ones;
3. the resulting Figure 1(a) matrix is printed.

Run with::

    python examples/impossibility_tour.py
"""

from __future__ import annotations

from repro.core.feasibility import feasibility_matrix, format_feasibility_matrix
from repro.proofs import c2c_breaks_the_chain, replay_theorem1, replay_theorem2


def main() -> None:
    print("=" * 78)
    print("1. Mechanical replay of Theorem 1 (three clients, C2C allowed)")
    print("=" * 78)
    replay1 = replay_theorem1()
    print(replay1.describe())
    print()

    print("=" * 78)
    print("2. Mechanical replay of Theorem 2 (two clients, no C2C)")
    print("=" * 78)
    replay2 = replay_theorem2()
    print(replay2.describe())
    print()

    blocked, reason = c2c_breaks_the_chain()
    print("Why client-to-client communication changes the answer:")
    print(f"  with algorithm A's info-reader message in place, the chain's first commuting step fails: {reason}")
    print()

    print("=" * 78)
    print("3. The boundary on running protocols (Figure 1a)")
    print("=" * 78)
    verdicts = feasibility_matrix(schedules=6)
    for verdict in verdicts:
        print("  *", verdict.describe())
    print()
    print(format_feasibility_matrix(verdicts))


if __name__ == "__main__":
    main()
