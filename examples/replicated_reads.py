"""The placement layer in action: quorum reads riding through a replica crash.

The paper assumes one server per object; ``repro.txn.placement`` replaces
that with replica groups and quorum policies, and ``repro.consensus`` does
the same for the coordinator.  This walkthrough runs the same workload
several ways and prints what changes:

1. the single-copy system (``replication_factor=1``) — the paper's setting;
2. the same system with a fail-stopped server: the only copy dies, reads
   touching it never finish (the seed's availability story);
3. ``replication_factor=3`` with majority quorums and the *same* crash: the
   outage is absorbed by the surviving quorum — full availability, identical
   SNOW verdict, identical read results;
4. with ``--consensus-factor 3``, a fourth run: the *coordinator's leader*
   fail-stops mid-run, the surviving consensus members elect a replacement,
   and the run still completes with the same verdict — the last single point
   of failure closed.

Run with:  PYTHONPATH=src python examples/replicated_reads.py [--consensus-factor 3]
"""

from __future__ import annotations

import argparse

from repro.faults import ChaosScheduler, FaultInjector, FaultPlan
from repro.faults.plan import CrashEvent
from repro.ioa import FIFOScheduler
from repro.protocols import get_protocol
from repro.txn import coordinator_group_names, object_names, replica_names

PROTOCOL = "algorithm-b"
NUM_OBJECTS = 2
SEED = 3


def run(replication_factor: int, crash_server: str | None, label: str, consensus_factor: int = 1):
    plan = None
    if crash_server is not None:
        plan = FaultPlan(
            name="crash-replica",
            crashes=(CrashEvent(server=crash_server, at=4, recover=None),),
        )
    handle = get_protocol(PROTOCOL).build(
        num_readers=2,
        num_writers=2,
        num_objects=NUM_OBJECTS,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=SEED,
        replication_factor=replication_factor,
        quorum="majority" if replication_factor > 1 else "read-one-write-all",
        consensus_factor=consensus_factor,
        fault_plane=FaultInjector(plan, seed=SEED) if plan is not None else None,
    )
    w1 = handle.submit_write({o: f"v1-{o}" for o in handle.objects}, txn_id="W1")
    handle.submit_read(handle.objects, txn_id="R1")
    w2 = handle.submit_write({o: f"v2-{o}" for o in handle.objects}, txn_id="W2", after=[w1])
    handle.submit_read(handle.objects, txn_id="R2", after=[w2])
    handle.run()

    incomplete = handle.simulation.incomplete_transactions()
    print(f"--- {label}")
    print(f"    system   : {handle.describe()}")
    print(f"    topology : {handle.simulation.topology.describe()}")
    if incomplete:
        stuck = ", ".join(str(r.txn_id) for r in incomplete)
        print(f"    STUCK    : {stuck} (the dead server held the only copy)")
    else:
        report = handle.snow_report()
        print(f"    verdict  : {report.property_string()}  (all transactions completed)")
        r2 = handle.simulation.transaction_record("R2")
        print(f"    R2 read  : {dict(r2.result.values)}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description="quorum reads riding through crashes")
    parser.add_argument(
        "--consensus-factor",
        type=int,
        default=1,
        help="replicate the coordinator over N consensus members (default 1)",
    )
    args = parser.parse_args()
    print(__doc__)

    # Names are derived from the build conventions, never hard-coded: the
    # first object's primary replica, its last replica, the consensus leader.
    first_object = object_names(NUM_OBJECTS)[0]
    primary = replica_names(first_object, 1)[0]
    last_replica = replica_names(first_object, 3)[-1]

    run(1, None, "replication_factor=1, fault-free (the paper's system)")
    run(1, primary, f"replication_factor=1, crash {primary} — the only copy of {first_object} dies")
    run(
        3,
        last_replica,
        f"replication_factor=3 + majority, crash {last_replica} — the quorum absorbs it",
    )
    if args.consensus_factor > 1:
        leader = coordinator_group_names(args.consensus_factor)[0]
        run(
            3,
            leader,
            f"replication_factor=3 + consensus_factor={args.consensus_factor}, "
            f"crash leader {leader} — the survivors elect a replacement",
            consensus_factor=args.consensus_factor,
        )


if __name__ == "__main__":
    main()
