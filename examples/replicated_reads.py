"""The placement layer in action: quorum reads riding through a replica crash.

The paper assumes one server per object; ``repro.txn.placement`` replaces
that with replica groups and quorum policies.  This walkthrough runs the same
workload three ways and prints what changes:

1. the single-copy system (``replication_factor=1``) — the paper's setting;
2. the same system with a fail-stopped server: the only copy dies, reads
   touching it never finish (the seed's availability story);
3. ``replication_factor=3`` with majority quorums and the *same* crash: the
   outage is absorbed by the surviving quorum — full availability, identical
   SNOW verdict, identical read results.

Run with:  PYTHONPATH=src python examples/replicated_reads.py
"""

from __future__ import annotations

from repro.faults import ChaosScheduler, FaultInjector, FaultPlan
from repro.faults.plan import CrashEvent
from repro.ioa import FIFOScheduler
from repro.protocols import get_protocol

PROTOCOL = "algorithm-b"


def run(replication_factor: int, crash_server: str | None, label: str):
    plan = None
    if crash_server is not None:
        plan = FaultPlan(
            name="crash-replica",
            crashes=(CrashEvent(server=crash_server, at=4, recover=None),),
        )
    handle = get_protocol(PROTOCOL).build(
        num_readers=2,
        num_writers=2,
        num_objects=2,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=3,
        replication_factor=replication_factor,
        quorum="majority" if replication_factor > 1 else "read-one-write-all",
        fault_plane=FaultInjector(plan, seed=3) if plan is not None else None,
    )
    w1 = handle.submit_write({o: f"v1-{o}" for o in handle.objects}, txn_id="W1")
    handle.submit_read(handle.objects, txn_id="R1")
    w2 = handle.submit_write({o: f"v2-{o}" for o in handle.objects}, txn_id="W2", after=[w1])
    handle.submit_read(handle.objects, txn_id="R2", after=[w2])
    handle.run()

    incomplete = handle.simulation.incomplete_transactions()
    print(f"--- {label}")
    print(f"    system   : {handle.describe()}")
    print(f"    topology : {handle.simulation.topology.describe()}")
    if incomplete:
        stuck = ", ".join(str(r.txn_id) for r in incomplete)
        print(f"    STUCK    : {stuck} (the dead server held the only copy)")
    else:
        report = handle.snow_report()
        print(f"    verdict  : {report.property_string()}  (all transactions completed)")
        r2 = handle.simulation.transaction_record("R2")
        print(f"    R2 read  : {dict(r2.result.values)}")
    print()


def main() -> None:
    print(__doc__)
    run(1, None, "replication_factor=1, fault-free (the paper's system)")
    run(1, "sx", "replication_factor=1, crash sx — the only copy of ox dies")
    run(3, "sx.3", "replication_factor=3 + majority, crash sx.3 — the quorum absorbs it")


if __name__ == "__main__":
    main()
