#!/usr/bin/env python
"""Quickstart: run the paper's algorithm A and check all four SNOW properties.

Algorithm A (Section 5.2) is the protocol that shows ideal READ transactions
*are* possible in the multi-writer single-reader setting when clients may
message each other: reads are strictly serializable, non-blocking, one round,
one version — the same latency as simple reads — while concurrent WRITE
transactions keep committing.

This script builds a small system (one reader, two writers, two shards),
runs a handful of transactions under a randomized asynchronous schedule, and
then lets the checkers judge the execution.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.ioa import RandomScheduler
from repro.protocols import get_protocol


def main() -> None:
    protocol = get_protocol("algorithm-a")
    handle = protocol.build(
        num_readers=1,
        num_writers=2,
        num_objects=2,
        scheduler=RandomScheduler(seed=42),
    )
    print(f"Built system: {handle.describe()}\n")

    # A tiny workload: two writers race, the reader keeps reading.
    w1 = handle.submit_write({"ox": "alice-1", "oy": "alice-1"}, writer="w1")
    r1 = handle.submit_read()  # concurrent with both writes
    w2 = handle.submit_write({"ox": "bob-1", "oy": "bob-1"}, writer="w2")
    r2 = handle.submit_read(after=[w1])  # starts only after w1 completed
    w3 = handle.submit_write({"ox": "alice-2", "oy": "alice-2"}, writer="w1")
    r3 = handle.submit_read(after=[w2, w3])  # sees everything

    handle.run_to_completion()

    print("Transaction history:")
    print(handle.history().describe())
    print()

    report = handle.snow_report()
    print("SNOW property report:")
    print(report.describe())
    print()

    lemma20 = handle.lemma20()
    print("Lemma 20 (P1-P4) check on the protocol-reported tags:")
    print(" ", lemma20.describe())
    print()

    print(
        f"Verdict: properties {report.property_string()} — "
        f"READ transactions took {report.max_rounds()} round(s) and returned "
        f"{report.max_versions()} version(s) per reply, matching simple reads."
    )


if __name__ == "__main__":
    main()
