"""Self-healing in action: the controller replaces a dead replica on its own.

PR 4 made membership change a first-class mid-run event, but every change was
hand-authored.  The rebalancing controller (``repro.consensus.controller``)
closes the loop: it probes every storage replica on the virtual clock, runs a
relative (sibling-witness) failure detector over the acks, and *derives* the
``ReconfigRequest`` that swaps a fail-stopped replica for a fresh one — fed
to the same joint-consensus driver as a planned change, so every safety
invariant applies verbatim.

This walkthrough runs one protocol family three ways and prints what changes:

1. ``replication_factor=3`` + majority with a fail-stopped replica and **no
   controller**: the quorum absorbs the crash, but the group stays at
   strength 2 forever — one more failure from an outage;
2. the same crash **with the controller**: the silent replica is detected,
   replaced (``sx.3`` → ``sx.4``) and state-synced, restoring full strength
   mid-run with availability 1.0 and zero epoch retries;
3. with ``--latency-bound``, a slow network instead of a crash: the
   controller grows the groups so the read quorum can route around
   stragglers (the grow-on-latency rule).

Run with:  PYTHONPATH=src python examples/self_healing.py [--protocol algorithm-c] [--latency-bound 4]
"""

from __future__ import annotations

import argparse

from repro.consensus import ControllerPolicy
from repro.faults import ChaosScheduler, FaultInjector, FaultPlan
from repro.faults.plan import CrashEvent, UniformLatency
from repro.ioa import FIFOScheduler
from repro.protocols import get_protocol

NUM_OBJECTS = 2
SEED = 3


def run(protocol_name: str, plan, controller, label: str):
    protocol = get_protocol(protocol_name)
    handle = protocol.build(
        num_readers=1 if not protocol.supports_multiple_readers else 2,
        num_writers=2,
        num_objects=NUM_OBJECTS,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=SEED,
        replication_factor=3,
        quorum="majority",
        controller=controller,
        fault_plane=FaultInjector(plan, seed=SEED) if plan is not None else None,
    )
    previous = None
    for index in range(1, 5):
        previous = handle.submit_write(
            {o: f"v{index}-{o}" for o in handle.objects},
            txn_id=f"W{index}",
            after=[previous] if previous else (),
        )
        handle.submit_read(handle.objects, txn_id=f"R{index}", after=[previous])
    handle.run()

    incomplete = handle.simulation.incomplete_transactions()
    submitted = len(handle.simulation.transaction_records())
    availability = (submitted - len(incomplete)) / submitted
    print(f"--- {label}")
    print(f"    availability : {availability:.2f}")
    if handle.directory is not None:
        print(f"    group of ox  : {handle.directory.group('ox')}")
        print(f"    retired      : {sorted(handle.directory.retired) or '-'}")
        print(f"    epoch retries: {len(handle.directory.retries)}")
        events = [
            dict(a.info)
            for a in handle.trace()
            if a.info
            and dict(a.info).get("controller")
            in ("replica-dead", "plan-replace", "plan-grow", "healed")
        ]
        for event in events:
            what = event["controller"]
            detail = event.get("replica") or event.get("group", "")
            print(f"    controller   : {what} {detail} @ vtime {event.get('vtime')}")
        if not events:
            print("    controller   : nothing derived (as it should be)")
    else:
        print(f"    group of ox  : fixed at build time (no membership machinery)")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description="autonomous replica replacement")
    parser.add_argument("--protocol", default="algorithm-b")
    parser.add_argument(
        "--latency-bound",
        type=int,
        default=None,
        help="also demo the grow-on-latency rule under a slow network",
    )
    args = parser.parse_args()

    crash = FaultPlan(
        name="fail-stop",
        crashes=(CrashEvent(server="sx.3", at=8, recover=None),),
        seed=SEED,
    )
    print(f"protocol: {args.protocol}, rf=3 + majority, sx.3 fail-stops at vtime 8\n")
    run(args.protocol, crash, None, "no controller: the crash is absorbed, the gap stays")
    run(
        args.protocol,
        crash,
        ControllerPolicy(),
        "with the controller: detected, replaced, state-synced — full strength again",
    )
    if args.latency_bound is not None:
        slow = FaultPlan(name="slow", latency=UniformLatency(8, 16), seed=SEED)
        run(
            args.protocol,
            slow,
            ControllerPolicy(
                latency_bound=args.latency_bound, fail_after=2, max_actions=2
            ),
            f"slow network + latency bound {args.latency_bound}: groups grow to absorb stragglers",
        )


if __name__ == "__main__":
    main()
