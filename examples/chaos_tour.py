#!/usr/bin/env python
"""Chaos tour: what each fault regime does to a SNOW protocol.

The paper's model gives every protocol reliable asynchronous channels; this
tour takes algorithm B (two-round, strictly serializable reads) and the
simple-read baseline through the fault plane instead:

1. **Reliable** — the baseline run, identical to the paper's model.
2. **Slow network** — uniform latency jitter; everything completes, latency
   degrades, the SNOW verdict is unchanged.
3. **Lossy network** — fair-loss links; the transport retry layer
   retransmits until delivery, so availability stays 1.0 at a latency cost.
4. **Crash + recover** — a shard fails mid-run and comes back; its mail is
   held and redelivered, transactions ride it out.
5. **Fail-stop** — the shard never comes back; every transaction that must
   touch it is stuck forever and availability drops below 1.0.
6. **Partition (healed)** — the reader is cut off from one shard for a
   window; reads stall, then the partition heals and the backlog drains.

With ``--consensus-factor N`` (N >= 2) the coordinator-dependent protocols
replicate their coordinator over an N-member consensus group and the tour
adds a seventh regime: **coordinator fail-stop** — the consensus *leader*
dies and the survivors elect a replacement, so the run stays fully available
(at factor 1 the same crash is just the fail-stop row: everything stalls).

Every run is driven by the chaos scheduler and is fully deterministic in its
seed — rerun the script and you get byte-for-byte the same executions.

Run with::

    python examples/chaos_tour.py [--consensus-factor 3]
"""

from __future__ import annotations

import argparse

from repro.analysis import ExperimentConfig, WorkloadSpec, run_experiment
from repro.faults import (
    FaultPlan,
    Partition,
    coordinator_failover,
    crash_recover,
    fail_stop,
    lossy_network,
    slow_network,
)
from repro.protocols import get_protocol, reader_names
from repro.txn import coordinator_group_names, object_names, server_for_object

SEED = 21
NUM_OBJECTS = 2
NUM_READERS = 2
WORKLOAD = WorkloadSpec(reads_per_reader=6, writes_per_writer=3, read_size=2, write_size=2, seed=SEED)


def run_cell(protocol: str, plan: FaultPlan, consensus_factor: int):
    config = ExperimentConfig(
        protocol=protocol,
        num_readers=NUM_READERS,
        num_writers=2,
        num_objects=NUM_OBJECTS,
        workload=WORKLOAD,
        scheduler="chaos",
        seed=SEED,
        faults=plan,
        consensus_factor=consensus_factor,
    )
    return run_experiment(config)


def describe_cell(result) -> str:
    metrics = result.metrics
    faults = metrics.faults
    lat = metrics.read_latency_steps
    lat_text = f"read latency mean={lat.mean:.1f} p95={lat.p95:.0f}" if lat.count else "no reads completed"
    avail = f"availability={faults.availability:.2f}" if faults is not None else "availability=1.00"
    extras = []
    if faults is not None:
        if faults.retransmissions:
            extras.append(f"retransmissions={faults.retransmissions}")
        if faults.held_by_crash:
            extras.append(f"crash-held={faults.held_by_crash}")
        if faults.held_by_partition:
            extras.append(f"partition-held={faults.held_by_partition}")
        if faults.messages_dropped:
            extras.append(f"dropped={faults.messages_dropped}")
    if metrics.consensus is not None and metrics.consensus.leaders_elected:
        extras.append(
            f"elections={metrics.consensus.leaders_elected} (term {metrics.consensus.max_term})"
        )
    extra_text = (", " + ", ".join(extras)) if extras else ""
    return f"SNOW={result.property_string()}  {avail}  {lat_text}{extra_text}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--consensus-factor",
        type=int,
        default=1,
        help="replicate the coordinator over N consensus members (default 1 = the paper's single coordinator)",
    )
    args = parser.parse_args()

    # Derive every process name from the build conventions instead of
    # hard-coding them — the names survive placement/consensus reconfigs.
    shard = server_for_object(object_names(NUM_OBJECTS)[0])
    readers = reader_names(NUM_READERS)
    partition = Partition(left=readers, right=(shard,), start=8, heal=60)
    tour = [
        ("reliable", FaultPlan.none()),
        ("slow network", slow_network(seed=SEED)),
        ("lossy + retry", lossy_network(seed=SEED)),
        (f"crash + recover {shard}", crash_recover(server=shard, at=10, recover=70, seed=SEED)),
        (f"fail-stop {shard}", fail_stop(server=shard, at=10, seed=SEED)),
        ("healed partition", FaultPlan(name="partition-heal", partitions=(partition,), seed=SEED)),
    ]
    coordinator_group = coordinator_group_names(args.consensus_factor)
    failover_cell = None
    if coordinator_group:
        failover_cell = (
            f"coordinator fail-stop {coordinator_group[0]}",
            coordinator_failover(leader=coordinator_group[0], at=12, seed=SEED),
        )

    for protocol in ("simple-rw", "algorithm-b"):
        factor = args.consensus_factor if get_protocol(protocol).has_coordinator else 1
        print(f"=== {protocol} (consensus_factor={factor}) ===")
        for label, plan in tour:
            result = run_cell(protocol, plan, factor)
            print(f"  {label:<26} {describe_cell(result)}")
        if failover_cell is not None and factor > 1:
            label, plan = failover_cell
            result = run_cell(protocol, plan, factor)
            print(f"  {label:<26} {describe_cell(result)}")
        print()

    print("Notes:")
    print("  * fail-stop of a shard is the only regime that costs availability —")
    print("    everything else is healed by retransmission, recovery, the partition")
    print("    heal, or (with --consensus-factor >= 3) leader re-election.")
    print("  * the SNOW verdict is measured on the transactions that completed;")
    print("    chaos changes latency and availability, not the safety verdicts.")


if __name__ == "__main__":
    main()
