#!/usr/bin/env python
"""Chaos tour: what each fault regime does to a SNOW protocol.

The paper's model gives every protocol reliable asynchronous channels; this
tour takes algorithm B (two-round, strictly serializable reads) and the
simple-read baseline through the fault plane instead:

1. **Reliable** — the baseline run, identical to the paper's model.
2. **Slow network** — uniform latency jitter; everything completes, latency
   degrades, the SNOW verdict is unchanged.
3. **Lossy network** — fair-loss links; the transport retry layer
   retransmits until delivery, so availability stays 1.0 at a latency cost.
4. **Crash + recover** — a shard fails mid-run and comes back; its mail is
   held and redelivered, transactions ride it out.
5. **Fail-stop** — the shard never comes back; every transaction that must
   touch it is stuck forever and availability drops below 1.0.
6. **Partition (healed)** — the reader is cut off from one shard for a
   window; reads stall, then the partition heals and the backlog drains.

Every run is driven by the chaos scheduler and is fully deterministic in its
seed — rerun the script and you get byte-for-byte the same executions.

Run with::

    python examples/chaos_tour.py
"""

from __future__ import annotations

from repro.analysis import ExperimentConfig, WorkloadSpec, run_experiment
from repro.faults import (
    FaultPlan,
    Partition,
    crash_recover,
    fail_stop,
    healed_partition,
    lossy_network,
    slow_network,
)

SEED = 21
WORKLOAD = WorkloadSpec(reads_per_reader=6, writes_per_writer=3, read_size=2, write_size=2, seed=SEED)


def run_cell(protocol: str, plan: FaultPlan):
    config = ExperimentConfig(
        protocol=protocol,
        num_readers=2,
        num_writers=2,
        num_objects=2,
        workload=WORKLOAD,
        scheduler="chaos",
        seed=SEED,
        faults=plan,
    )
    return run_experiment(config)


def describe_cell(result) -> str:
    metrics = result.metrics
    faults = metrics.faults
    lat = metrics.read_latency_steps
    lat_text = f"read latency mean={lat.mean:.1f} p95={lat.p95:.0f}" if lat.count else "no reads completed"
    avail = f"availability={faults.availability:.2f}" if faults is not None else "availability=1.00"
    extras = []
    if faults is not None:
        if faults.retransmissions:
            extras.append(f"retransmissions={faults.retransmissions}")
        if faults.held_by_crash:
            extras.append(f"crash-held={faults.held_by_crash}")
        if faults.held_by_partition:
            extras.append(f"partition-held={faults.held_by_partition}")
        if faults.messages_dropped:
            extras.append(f"dropped={faults.messages_dropped}")
    extra_text = (", " + ", ".join(extras)) if extras else ""
    return f"SNOW={result.property_string()}  {avail}  {lat_text}{extra_text}"


def main() -> None:
    # The reader group r1/r2 is cut off from shard sx for a mid-run window.
    partition = Partition(left=("r1", "r2"), right=("sx",), start=8, heal=60)
    tour = [
        ("reliable", FaultPlan.none()),
        ("slow network", slow_network(seed=SEED)),
        ("lossy + retry", lossy_network(seed=SEED)),
        ("crash + recover sx", crash_recover(server="sx", at=10, recover=70, seed=SEED)),
        ("fail-stop sx", fail_stop(server="sx", at=10, seed=SEED)),
        ("healed partition", FaultPlan(name="partition-heal", partitions=(partition,), seed=SEED)),
    ]
    for protocol in ("simple-rw", "algorithm-b"):
        print(f"=== {protocol} ===")
        for label, plan in tour:
            result = run_cell(protocol, plan)
            print(f"  {label:<22} {describe_cell(result)}")
        print()

    print("Notes:")
    print("  * fail-stop is the only regime that costs availability — everything")
    print("    else is healed by retransmission, recovery or the partition heal.")
    print("  * the SNOW verdict is measured on the transactions that completed;")
    print("    chaos changes latency and availability, not the safety verdicts.")


if __name__ == "__main__":
    main()
