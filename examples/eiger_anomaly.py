#!/usr/bin/env python
"""Reproduce Figure 5: Eiger-style read-only transactions are not strictly serializable.

The original SNOW paper credited Eiger with bounded-latency *strictly
serializable* read-only transactions; Section 6 of *SNOW Revisited* shows that
claim is wrong, because Eiger orders operations with Lamport clocks and
logical clocks cannot see the real-time order of causally unrelated
operations.

This example drives the executable Eiger-style protocol through exactly the
Figure 5 scenario — two servers, writes w1, w2 to one shard and w3 to the
other issued by a *different* writer only after w2 finished, and a READ
transaction racing all three — and shows that the READ is accepted in a
single round yet returns a combination of values (w3's together with w1's)
that no strictly serializable system could return.

Run with::

    python examples/eiger_anomaly.py
"""

from __future__ import annotations

from repro.proofs import run_figure5


def main() -> None:
    result = run_figure5()

    print("The Figure 5 execution, transaction by transaction:")
    print(result.history.describe())
    print()

    print("What the Eiger-style reader did:")
    print(f"  READ returned      : {result.read_result.describe()}")
    print(f"  accepted in round 1: {result.accepted_first_round} (validity intervals overlapped)")
    print()

    print("What the checkers say:")
    print("  SNOW report        :", result.snow_report.property_string(),
          "(non-blocking, one version, writes complete — only S fails)")
    print("  serializability    :", result.serializability.describe())
    print()

    print("Why this violates strict serializability:")
    print(f"  * {result.w2_id} (oy=b2) finished before {result.w3_id} (ox=a3) was even invoked;")
    print(f"  * the READ observed {result.w3_id}'s value for ox, so any serialization must place it after")
    print(f"    {result.w3_id}, hence after {result.w2_id} — but then oy must be b2, not the b1 it returned.")
    print()
    print(f"Anomaly reproduced end to end: {result.anomaly_reproduced}")
    print()
    print("Consequence (Section 6): before algorithms B and C there was no READ transaction design with")
    print("bounded non-blocking latency *and* strict serializability alongside WRITE transactions.")


if __name__ == "__main__":
    main()
